//! Analytic per-iteration time and throughput for the Table 1 workloads.
//!
//! The throughput sweeps of Figs. 6–10 and 13–16 use the paper's large models
//! (up to 128 M parameters), which would be pointless to train for real here:
//! their per-iteration time is entirely determined by the model dimension,
//! the cluster shape and the link/device characteristics. This module
//! evaluates exactly the same [`CostModel`] formulas that the training
//! runtime (`garfield_core::Deployment`) charges, so the simulated sweeps and
//! the real training traces are mutually consistent.

use garfield_core::{IterationTiming, SystemKind};
use garfield_net::{CostModel, Device};

/// One point of a throughput sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Per-iteration timing breakdown.
    pub timing: IterationTiming,
    /// Model updates per second.
    pub updates_per_second: f64,
    /// Mini-batches per second (`updates × nw`).
    pub batches_per_second: f64,
}

/// Analytic per-iteration timing of `system` for a `d`-parameter model.
///
/// `nw`/`fw` are the worker counts, `nps`/`fps` the server counts and
/// `batch` the per-worker batch size. The formulas mirror, term by term, what
/// `garfield_core::Deployment` charges a *synchronous* deployment (the
/// default `ExperimentConfig`, which waits for all `nw` gradients):
///
/// * computation — one gradient estimate on the configured device;
/// * communication — model broadcast + gradient pulls (uploaded to all
///   server replicas at once: latency overlaps, bytes serialize — see
///   [`CostModel::fanout_pull_time`]), plus model exchanges between replicas
///   where the system has them, plus the `O(n)` contention factor for the
///   all-to-all decentralized topology;
/// * aggregation — linear-cost rules for averaging/median paths, quadratic
///   for the robust gradient GARs, plus the model-path GAR where one runs.
#[allow(clippy::too_many_arguments)]
pub fn iteration_time(
    system: SystemKind,
    d: usize,
    nw: usize,
    fw: usize,
    nps: usize,
    fps: usize,
    batch: usize,
    device: Device,
    cost: &CostModel,
) -> IterationTiming {
    let computation = cost.gradient_time(d, batch, device);
    let gradient_quorum = nw.max(1);
    let model_quorum = nps.saturating_sub(fps).max(1);
    let broadcast = cost.parallel_pull_time(d, nw, device);
    let single_pull = |count: usize| cost.parallel_pull_time(d, count, device);
    let fanned_pull = |count: usize, fanout: usize| cost.fanout_pull_time(d, count, fanout, device);

    let (communication, aggregation) = match system {
        SystemKind::Vanilla => (
            broadcast + single_pull(gradient_quorum),
            cost.aggregation_time(d, gradient_quorum, 1, device),
        ),
        SystemKind::AggregaThor => (
            (broadcast + single_pull(gradient_quorum)) * 1.25,
            cost.aggregation_time(d, gradient_quorum, 2, device),
        ),
        SystemKind::Ssmw => (
            broadcast + single_pull(gradient_quorum),
            cost.aggregation_time(d, gradient_quorum, 2, device),
        ),
        // SSMW's topology, the cheap path's cost: the model prices the
        // fault-free common case where the check never trips.
        SystemKind::Speculative => (
            broadcast + single_pull(gradient_quorum),
            cost.aggregation_time(d, gradient_quorum, 1, device),
        ),
        SystemKind::CrashTolerant => (
            broadcast + fanned_pull(gradient_quorum, nps.max(1)),
            cost.aggregation_time(d, gradient_quorum, 1, device),
        ),
        SystemKind::Msmw => (
            broadcast + fanned_pull(gradient_quorum, nps.max(1)) + single_pull(model_quorum),
            cost.aggregation_time(d, gradient_quorum, 2, device)
                + cost.aggregation_time(d, model_quorum + 1, 1, device),
        ),
        SystemKind::Decentralized => {
            // Every node is worker and server at once (nps = nw); each pulls
            // gradients fanned across all n replicas plus peer models, and the
            // shared fabric carries all n nodes' rounds concurrently.
            let n = nw.max(1);
            let peer_quorum = nw.saturating_sub(fw).clamp(1, n.saturating_sub(1).max(1));
            (
                (broadcast + fanned_pull(gradient_quorum, n) + single_pull(peer_quorum)) * n as f64,
                cost.aggregation_time(d, gradient_quorum, 2, device)
                    + cost.aggregation_time(d, peer_quorum + 1, 1, device) * 2.0,
            )
        }
    };
    IterationTiming {
        computation,
        communication,
        aggregation,
    }
}

/// Throughput (updates and batches per second) for the same analytic model.
#[allow(clippy::too_many_arguments)]
pub fn throughput(
    system: SystemKind,
    d: usize,
    nw: usize,
    fw: usize,
    nps: usize,
    fps: usize,
    batch: usize,
    device: Device,
    cost: &CostModel,
) -> ThroughputPoint {
    let timing = iteration_time(system, d, nw, fw, nps, fps, batch, device, cost);
    let total = timing.total().max(1e-12);
    ThroughputPoint {
        timing,
        updates_per_second: 1.0 / total,
        batches_per_second: nw as f64 / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RESNET50: usize = 23_539_850;

    fn point(system: SystemKind, device: Device) -> ThroughputPoint {
        throughput(
            system,
            RESNET50,
            18,
            3,
            6,
            1,
            32,
            device,
            &CostModel::default(),
        )
    }

    #[test]
    fn ordering_matches_the_paper_cpu() {
        let vanilla = point(SystemKind::Vanilla, Device::Cpu).updates_per_second;
        let ssmw = point(SystemKind::Ssmw, Device::Cpu).updates_per_second;
        let crash = point(SystemKind::CrashTolerant, Device::Cpu).updates_per_second;
        let msmw = point(SystemKind::Msmw, Device::Cpu).updates_per_second;
        let dec = point(SystemKind::Decentralized, Device::Cpu).updates_per_second;
        assert!(vanilla > ssmw, "vanilla should be the fastest");
        assert!(
            ssmw > crash,
            "tolerating Byzantine workers should cost less than crash tolerance"
        );
        assert!(
            crash > msmw,
            "tolerating Byzantine servers should cost more than crash tolerance"
        );
        assert!(msmw > dec, "decentralized should be the slowest");
    }

    #[test]
    fn communication_dominates_and_gpu_is_faster() {
        let p = point(SystemKind::Msmw, Device::Cpu);
        assert!(p.timing.communication > 0.6 * p.timing.total());
        assert!(p.timing.aggregation < 0.25 * p.timing.total());
        let gpu = point(SystemKind::Msmw, Device::Gpu);
        assert!(gpu.updates_per_second > 3.0 * p.updates_per_second);
    }

    #[test]
    fn slowdown_grows_then_saturates_with_model_dimension() {
        // Paper Fig. 6: the Byzantine-resilience overhead grows with d only up
        // to a point, after which communication (O(d) for everyone) dominates.
        let cost = CostModel::default();
        let slowdown = |d: usize| {
            let v = throughput(SystemKind::Vanilla, d, 18, 3, 6, 1, 32, Device::Cpu, &cost);
            let m = throughput(SystemKind::Msmw, d, 18, 3, 6, 1, 32, Device::Cpu, &cost);
            v.updates_per_second / m.updates_per_second
        };
        let small = slowdown(79_510);
        let big = slowdown(62_697_610);
        let huge = slowdown(128_807_306);
        assert!(big > small, "slowdown should grow with model size");
        assert!(
            (huge - big).abs() / big < 0.35,
            "slowdown should saturate for huge models"
        );
    }

    #[test]
    fn decentralized_communication_grows_quadratically_with_n() {
        let cost = CostModel::default();
        let comm = |n: usize| {
            iteration_time(
                SystemKind::Decentralized,
                1_000_000,
                n,
                1,
                0,
                0,
                32,
                Device::Gpu,
                &cost,
            )
            .communication
        };
        let ratio = comm(6) / comm(3);
        assert!(
            ratio > 3.0,
            "doubling n should ~quadruple decentralized communication, got {ratio}"
        );
        let vanilla = |n: usize| {
            iteration_time(
                SystemKind::Vanilla,
                1_000_000,
                n,
                0,
                1,
                0,
                32,
                Device::Gpu,
                &cost,
            )
            .communication
        };
        let vr = vanilla(6) / vanilla(3);
        assert!(
            vr < 2.5,
            "vanilla communication should grow roughly linearly, got {vr}"
        );
    }

    #[test]
    fn byzantine_servers_cost_more_than_byzantine_workers() {
        // Paper: +53% over SSMW for server tolerance, +22% over crash tolerance (GPU numbers).
        let ssmw = point(SystemKind::Ssmw, Device::Gpu).timing.total();
        let msmw = point(SystemKind::Msmw, Device::Gpu).timing.total();
        let crash = point(SystemKind::CrashTolerant, Device::Gpu).timing.total();
        assert!(
            msmw > ssmw * 1.2,
            "server tolerance should add substantial overhead over SSMW"
        );
        assert!(
            msmw > crash,
            "Byzantine server tolerance should cost more than crash tolerance"
        );
        assert!(msmw < crash * 2.0, "but not catastrophically more");
    }
}
