//! `expfig trace <dir>`: merge per-node flight-recorder dumps into one
//! per-round, cross-node timeline.
//!
//! Each `garfield-node --flight-dir` process writes
//! `flight-<role><rank>.jsonl` (schema `garfield-obs/flight-v1`): a header
//! line carrying the process's epoch as unix microseconds, then one event
//! per line with a monotonic `t_us` offset from that epoch. Merging dumps
//! is therefore: `abs_us = epoch_unix_us + t_us` per event, sort, group by
//! round. The resulting table answers the questions a stalled run raises —
//! how long each round took, which worker was the last to satisfy a pull
//! (the straggler the quorum waited on), which pulls had to be re-asked,
//! and how the round's critical path split between gathering the quorum and
//! the aggregate/apply tail.
//!
//! Unix clocks across machines are only as aligned as NTP keeps them; on
//! one host (the multi-process smoke setup) the alignment error is
//! microseconds, across a real cluster it is whatever the fleet's clock
//! discipline allows. The per-round durations within one node's events are
//! monotonic regardless.

use crate::report::Row;
use garfield_core::json::{self, Value};
use garfield_obs::flight::{EventKind, FLIGHT_SCHEMA};

/// One flight event, re-anchored to absolute unix microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedEvent {
    /// Absolute timestamp: the dump's `epoch_unix_us` plus the event's
    /// monotonic offset.
    pub abs_us: u64,
    /// Node the event happened on.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// Training round the event belongs to.
    pub round: u64,
    /// Peer involved (the worker a pull went to, the sender of a dropped
    /// frame), when the event has one.
    pub peer: Option<u32>,
    /// Event payload (quorum size, latency seconds, …; 0 when unused).
    pub value: f64,
}

/// One parsed dump file.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Process id recorded in the header.
    pub pid: u64,
    /// The dump's epoch in unix microseconds.
    pub epoch_unix_us: u64,
    /// Events, re-anchored to absolute time.
    pub events: Vec<MergedEvent>,
}

/// Parses one JSONL flight dump.
///
/// # Errors
///
/// Returns a message naming the first malformed line, a wrong schema tag,
/// or an unknown event kind.
pub fn parse_dump(text: &str) -> Result<FlightDump, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty dump")?;
    let header = json::parse(header).map_err(|e| format!("header: {e}"))?;
    let schema = header
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("header has no 'schema'")?;
    if schema != FLIGHT_SCHEMA {
        return Err(format!("schema '{schema}' is not '{FLIGHT_SCHEMA}'"));
    }
    let epoch_unix_us = header
        .get("epoch_unix_us")
        .and_then(Value::as_f64)
        .ok_or("header has no 'epoch_unix_us'")? as u64;
    let pid = header.get("pid").and_then(Value::as_f64).unwrap_or(0.0) as u64;

    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        let doc = json::parse(line).map_err(|e| format!("event line {}: {e}", i + 1))?;
        let field = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("event line {} misses numeric '{}'", i + 1, k))
        };
        let kind_name = doc
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event line {} misses 'kind'", i + 1))?;
        let kind = EventKind::parse(kind_name)
            .ok_or_else(|| format!("event line {}: unknown kind '{kind_name}'", i + 1))?;
        events.push(MergedEvent {
            abs_us: epoch_unix_us + field("t_us")? as u64,
            node: field("node")? as u32,
            kind,
            round: field("round")? as u64,
            peer: doc.get("peer").and_then(Value::as_f64).map(|p| p as u32),
            // Non-finite payloads dump as null; read them back as NaN.
            value: match doc.get("value") {
                Some(Value::Null) | None => f64::NAN,
                Some(v) => v.as_f64().unwrap_or(f64::NAN),
            },
        });
    }
    Ok(FlightDump {
        pid,
        epoch_unix_us,
        events,
    })
}

/// Merges dumps into one absolute-time-ordered event stream.
pub fn merge(dumps: &[FlightDump]) -> Vec<MergedEvent> {
    let mut all: Vec<MergedEvent> = dumps.iter().flat_map(|d| d.events.clone()).collect();
    all.sort_by_key(|e| (e.abs_us, e.node));
    all
}

/// One reconstructed round of the cross-node timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTimeline {
    /// Round number.
    pub round: u64,
    /// Wall-clock milliseconds from the first `RoundStart` to the last
    /// `RoundEnd` of the round, across all nodes.
    pub duration_ms: f64,
    /// Milliseconds from the round's start to its last `QuorumFormed` —
    /// the gather half of the critical path.
    pub quorum_ms: f64,
    /// Milliseconds from the last `QuorumFormed` to the round's end — the
    /// aggregate/apply tail of the critical path (0 when no quorum event
    /// landed in the dump window).
    pub tail_ms: f64,
    /// Pull requests issued.
    pub pulls: u64,
    /// Pull re-asks (requests re-sent to silent peers).
    pub retries: u64,
    /// Frames dropped by transport backpressure during the round.
    pub drops: u64,
    /// The peer whose reply arrived last before the quorum formed — the
    /// straggler the round waited on (`None` when no pull was satisfied).
    pub slowest_peer: Option<u32>,
    /// Milliseconds the slowest satisfied pull was outstanding.
    pub slowest_wait_ms: f64,
    /// Checkpoints written during the round.
    pub checkpoints: u64,
    /// The worst one-way wire delay observed this round (milliseconds),
    /// straight from the `wire_recv` events' sender-stamp-vs-receive-clock
    /// measurement — the *network* share of the critical path, separated
    /// from compute-side straggling.
    pub wire_delay_ms: f64,
    /// The sender whose message rode that worst delay (`None` when the
    /// round carried no trace-stamped traffic).
    pub wire_slowest_peer: Option<u32>,
}

/// Groups a merged event stream into per-round timelines (rounds sorted).
pub fn rounds(events: &[MergedEvent]) -> Vec<RoundTimeline> {
    let mut ids: Vec<u64> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RoundStart | EventKind::RoundEnd))
        .map(|e| e.round)
        .collect();
    ids.sort_unstable();
    ids.dedup();

    let mut out = Vec::with_capacity(ids.len());
    for round in ids {
        let of_round = || events.iter().filter(move |e| e.round == round);
        let first = |kind: EventKind| {
            of_round()
                .filter(|e| e.kind == kind)
                .map(|e| e.abs_us)
                .min()
        };
        let last = |kind: EventKind| {
            of_round()
                .filter(|e| e.kind == kind)
                .map(|e| e.abs_us)
                .max()
        };
        let count = |kind: EventKind| of_round().filter(|e| e.kind == kind).count() as u64;

        let start = match first(EventKind::RoundStart) {
            Some(t) => t,
            // A dump window can catch a round's end without its start (ring
            // overwrote it); anchor on whatever we have.
            None => of_round().map(|e| e.abs_us).min().unwrap_or(0),
        };
        let end = last(EventKind::RoundEnd).unwrap_or(start);
        let quorum = last(EventKind::QuorumFormed);

        // The straggler: among satisfied pulls, the latest one. Its wait is
        // measured from the round's (first) pull issue, which is when the
        // server started waiting.
        let slowest = of_round()
            .filter(|e| e.kind == EventKind::PullSatisfied)
            .max_by_key(|e| e.abs_us);
        let issued = first(EventKind::PullIssued);
        let ms = |later: u64, earlier: u64| later.saturating_sub(earlier) as f64 / 1e3;

        // The round's worst wire hop: `wire_recv` carries the measured
        // one-way delay (ms) as its value and the sender as its peer.
        let worst_wire = of_round()
            .filter(|e| e.kind == EventKind::WireRecv && e.value.is_finite())
            .max_by(|a, b| a.value.total_cmp(&b.value));

        out.push(RoundTimeline {
            round,
            duration_ms: ms(end, start),
            quorum_ms: quorum.map_or(0.0, |q| ms(q, start)),
            tail_ms: quorum.map_or(0.0, |q| ms(end, q)),
            pulls: count(EventKind::PullIssued),
            retries: count(EventKind::PullRetried),
            drops: count(EventKind::FrameDropped),
            slowest_peer: slowest.and_then(|e| e.peer),
            slowest_wait_ms: match (slowest, issued) {
                (Some(e), Some(t0)) => ms(e.abs_us, t0),
                _ => 0.0,
            },
            checkpoints: count(EventKind::CheckpointWritten),
            wire_delay_ms: worst_wire.map_or(0.0, |e| e.value),
            wire_slowest_peer: worst_wire.and_then(|e| e.peer),
        });
    }
    out
}

/// Per-peer one-way-delay attribution across the whole merged stream: how
/// every sender's messages fared on the wire, from the `wire_recv` events'
/// sender-stamp measurements. This is the cross-round view the per-round
/// `wire_*` columns summarize — a consistently slow peer shows up here even
/// when it never "wins" a round's worst-hop slot.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerDelay {
    /// The sending node.
    pub peer: u32,
    /// Trace-stamped messages received from it.
    pub messages: u64,
    /// Mean one-way delay in milliseconds.
    pub mean_ms: f64,
    /// Worst one-way delay in milliseconds.
    pub max_ms: f64,
}

/// Aggregates `wire_recv` events into per-sender delay profiles, slowest
/// mean first. Negative measured delays (receiver clock behind the sender's)
/// are kept as-is: they bound the clock skew and belong in the mean.
pub fn peer_delays(events: &[MergedEvent]) -> Vec<PeerDelay> {
    let mut out: Vec<PeerDelay> = Vec::new();
    for e in events {
        if e.kind != EventKind::WireRecv || !e.value.is_finite() {
            continue;
        }
        let Some(peer) = e.peer else { continue };
        match out.iter_mut().find(|p| p.peer == peer) {
            Some(p) => {
                p.messages += 1;
                p.mean_ms += e.value; // sum for now, divided below
                p.max_ms = p.max_ms.max(e.value);
            }
            None => out.push(PeerDelay {
                peer,
                messages: 1,
                mean_ms: e.value,
                max_ms: e.value,
            }),
        }
    }
    for p in &mut out {
        p.mean_ms /= p.messages as f64;
    }
    out.sort_by(|a, b| b.mean_ms.total_cmp(&a.mean_ms));
    out
}

/// Renders per-peer delay profiles as report rows.
pub fn as_peer_rows(delays: &[PeerDelay]) -> Vec<Row> {
    delays
        .iter()
        .map(|p| {
            Row::new(
                format!("peer {}", p.peer),
                vec![
                    ("msgs", p.messages as f64),
                    ("mean_ms", p.mean_ms),
                    ("max_ms", p.max_ms),
                ],
            )
        })
        .collect()
}

/// Renders round timelines as report rows for `print_table`/`write_csv`.
/// `slow_node` is −1 when the round had no satisfied pull.
pub fn as_rows(timelines: &[RoundTimeline]) -> Vec<Row> {
    timelines
        .iter()
        .map(|t| {
            Row::new(
                format!("round {}", t.round),
                vec![
                    ("dur_ms", t.duration_ms),
                    ("quorum_ms", t.quorum_ms),
                    ("tail_ms", t.tail_ms),
                    ("pulls", t.pulls as f64),
                    ("retries", t.retries as f64),
                    ("drops", t.drops as f64),
                    ("slow_node", t.slowest_peer.map_or(-1.0, f64::from)),
                    ("slow_wait_ms", t.slowest_wait_ms),
                    ("ckpts", t.checkpoints as f64),
                    ("wire_ms", t.wire_delay_ms),
                    ("wire_peer", t.wire_slowest_peer.map_or(-1.0, f64::from)),
                ],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dump(epoch: u64, node: u32, lines: &[(u64, &str, u64, Option<u32>)]) -> String {
        let mut text = format!(
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"epoch_unix_us\":{epoch},\"pid\":7,\
             \"events\":{},\"overwritten\":0}}\n",
            lines.len()
        );
        for (t, kind, round, peer) in lines {
            let peer = peer.map_or("null".to_string(), |p| p.to_string());
            text.push_str(&format!(
                "{{\"t_us\":{t},\"node\":{node},\"kind\":\"{kind}\",\"round\":{round},\
                 \"peer\":{peer},\"value\":1.0}}\n"
            ));
        }
        text
    }

    #[test]
    fn merges_two_nodes_into_one_round_timeline() {
        // Server (node 0) starts round 3 at epoch 1000, issues a pull, gets
        // replies from peers 2 then 3, forms a quorum, ends the round.
        let server = dump(
            1_000,
            0,
            &[
                (0, "round_start", 3, None),
                (10, "pull_issued", 3, None),
                (200, "pull_satisfied", 3, Some(2)),
                (900, "pull_satisfied", 3, Some(3)),
                (950, "quorum_formed", 3, None),
                (1_200, "round_end", 3, None),
            ],
        );
        // A worker (node 2) whose clock epoch differs by 500 µs.
        let worker = dump(1_500, 2, &[(100, "frame_dropped", 3, Some(1))]);

        let dumps = vec![parse_dump(&server).unwrap(), parse_dump(&worker).unwrap()];
        assert_eq!(dumps[0].pid, 7);
        let merged = merge(&dumps);
        assert_eq!(merged.len(), 7);
        // Absolute ordering interleaves the worker's drop (abs 1600) into
        // the server's round (abs 1000..2200).
        assert_eq!(merged[3].kind, EventKind::FrameDropped);

        let timeline = rounds(&merged);
        assert_eq!(timeline.len(), 1);
        let r = &timeline[0];
        assert_eq!(r.round, 3);
        assert!((r.duration_ms - 1.2).abs() < 1e-9);
        assert!((r.quorum_ms - 0.95).abs() < 1e-9);
        assert!((r.tail_ms - 0.25).abs() < 1e-9);
        assert_eq!(r.pulls, 1);
        assert_eq!(r.retries, 0);
        assert_eq!(r.drops, 1);
        assert_eq!(r.slowest_peer, Some(3));
        assert!((r.slowest_wait_ms - 0.89).abs() < 1e-9);

        let rows = as_rows(&timeline);
        assert_eq!(rows[0].label, "round 3");
        assert_eq!(rows[0].values[6], ("slow_node".to_string(), 3.0));
    }

    #[test]
    fn rejects_wrong_schema_and_malformed_lines() {
        assert!(parse_dump("").is_err());
        assert!(parse_dump("{\"schema\":\"other/v9\",\"epoch_unix_us\":1}").is_err());
        let bad_kind = format!(
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"epoch_unix_us\":1}}\n\
             {{\"t_us\":1,\"node\":0,\"kind\":\"nope\",\"round\":0,\"peer\":null,\"value\":0}}"
        );
        assert!(parse_dump(&bad_kind).unwrap_err().contains("unknown kind"));
    }

    #[test]
    fn wire_recv_events_attribute_network_delay_per_round_and_per_peer() {
        let wire = |abs_us: u64, round: u64, peer: u32, delay_ms: f64| MergedEvent {
            abs_us,
            node: 0,
            kind: EventKind::WireRecv,
            round,
            peer: Some(peer),
            value: delay_ms,
        };
        let frame = |abs_us: u64, kind: EventKind, round: u64| MergedEvent {
            abs_us,
            node: 0,
            kind,
            round,
            peer: None,
            value: 0.0,
        };
        let events = vec![
            frame(0, EventKind::RoundStart, 1),
            wire(10, 1, 2, 0.5),
            wire(20, 1, 3, 4.0), // peer 3 rode the worst hop of round 1
            frame(100, EventKind::RoundEnd, 1),
            frame(200, EventKind::RoundStart, 2),
            wire(210, 2, 2, 1.5),
            wire(220, 2, 3, f64::NAN), // unstamped legacy frame: ignored
            frame(300, EventKind::RoundEnd, 2),
        ];

        let t = rounds(&events);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].wire_slowest_peer, Some(3));
        assert!((t[0].wire_delay_ms - 4.0).abs() < 1e-12);
        assert_eq!(t[1].wire_slowest_peer, Some(2), "NaN never wins");
        assert!((t[1].wire_delay_ms - 1.5).abs() < 1e-12);
        let row = &as_rows(&t)[0];
        assert_eq!(row.values[9], ("wire_ms".to_string(), 4.0));
        assert_eq!(row.values[10], ("wire_peer".to_string(), 3.0));

        // Per-peer attribution across rounds: peer 3's one valid sample
        // averages 4.0, peer 2 averages (0.5 + 1.5) / 2 = 1.0.
        let delays = peer_delays(&events);
        assert_eq!(delays.len(), 2);
        assert_eq!(delays[0].peer, 3, "slowest mean first");
        assert_eq!(delays[0].messages, 1);
        assert!((delays[0].mean_ms - 4.0).abs() < 1e-12);
        assert_eq!(delays[1].peer, 2);
        assert_eq!(delays[1].messages, 2);
        assert!((delays[1].mean_ms - 1.0).abs() < 1e-12);
        assert!((delays[1].max_ms - 1.5).abs() < 1e-12);

        let rows = as_peer_rows(&delays);
        assert_eq!(rows[0].label, "peer 3");
        assert_eq!(rows[1].values[0], ("msgs".to_string(), 2.0));
    }

    #[test]
    fn a_round_without_quorum_or_pulls_still_rows() {
        let text = dump(
            0,
            1,
            &[(0, "round_start", 0, None), (500, "round_end", 0, None)],
        );
        let t = rounds(&merge(&[parse_dump(&text).unwrap()]));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].slowest_peer, None);
        assert_eq!(t[0].quorum_ms, 0.0);
        assert!((t[0].duration_ms - 0.5).abs() < 1e-9);
        assert_eq!(as_rows(&t)[0].values[6].1, -1.0);
    }
}
