//! Criterion micro-benchmark for the pairwise distance kernels themselves:
//! the retained `scalar` reference (serial f32 adds, what the hot path
//! compiled to before the chunked rewrite), the `chunked` multi-lane kernel
//! applied per whole pair, the `blocked` cache-sized `DistanceCache` fill,
//! and the `gram` fast-math fill (Gram identity with cached norms, norm pass
//! included). All single-threaded, so the numbers isolate kernel shape from
//! engine fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garfield_aggregation::{DistanceCache, Engine};
use garfield_tensor::{
    squared_l2_distance_scalar, squared_l2_distance_slices, GradientView, TensorRng,
};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let n = 15usize;
    let mut rng = TensorRng::seed_from(7);
    let mut group = c.benchmark_group("kernels_pairwise_distance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for d in [10_000usize, 1_000_000] {
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_tensor(d).into_vec()).collect();
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let seq = Engine::sequential();
        let gram = Engine::sequential().fast_math(true);

        for (name, kernel) in [
            (
                "scalar",
                squared_l2_distance_scalar as fn(&[f32], &[f32]) -> f32,
            ),
            ("chunked", squared_l2_distance_slices),
        ] {
            group.bench_with_input(BenchmarkId::new(name, d), &inputs, |b, inputs| {
                b.iter(|| {
                    let mut sum = 0.0f32;
                    for i in 0..n {
                        for j in (i + 1)..n {
                            sum += kernel(&inputs[i], &inputs[j]);
                        }
                    }
                    sum
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("blocked", d), &views, |b, views| {
            b.iter(|| DistanceCache::build(views, &seq).get(0, 1))
        });
        group.bench_with_input(BenchmarkId::new("gram", d), &views, |b, views| {
            b.iter(|| DistanceCache::build(views, &gram).get(0, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
