//! Criterion micro-benchmark for Fig. 3b: GAR aggregation time versus the
//! gradient dimension `d`, at n = 17 inputs (CPU kernels).
//!
//! Every GAR is measured on both execution engines so the criterion output
//! names `seq/<gar>` (single-threaded reference path) and `par/<gar>`
//! (thread-chunked distance matrix and coordinate fills) side by side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garfield_aggregation::{build_gar, Engine, GarKind};
use garfield_tensor::{GradientView, TensorRng};
use std::time::Duration;

fn bench_gar_dim(c: &mut Criterion) {
    let n = 17;
    let f = (n - 3) / 4;
    let mut rng = TensorRng::seed_from(2);
    let mut group = c.benchmark_group("fig3b_gar_vs_dimension");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for d in [10_000usize, 100_000] {
        let inputs: Vec<Vec<f32>> = (0..n).map(|_| rng.normal_tensor(d).into_vec()).collect();
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        for kind in [
            GarKind::Average,
            GarKind::Median,
            GarKind::MultiKrum,
            GarKind::Mda,
            GarKind::Bulyan,
        ] {
            let gar = build_gar(&kind, n, if kind == GarKind::Average { 0 } else { f }).unwrap();
            for (engine_name, engine) in [("seq", Engine::sequential()), ("par", Engine::auto())] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{engine_name}/{}", kind.as_str()), d),
                    &views,
                    |b, views| b.iter(|| gar.aggregate_views(views, &engine).unwrap()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gar_dim);
criterion_main!(benches);
