//! Criterion benchmark of the communication substrate: the real message
//! router's point-to-point path and the `PullRound` "fastest q of n" primitive.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use garfield_net::{NodeId, PullRound, Router};
use std::time::Duration;

fn bench_fabric(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let router = Router::new();
    let a = router.register(NodeId(1)).unwrap();
    let b = router.register(NodeId(2)).unwrap();
    let payload = Bytes::from(vec![0u8; 64 * 1024]);
    group.bench_function("router_send_recv_64KiB", |bencher| {
        bencher.iter(|| {
            a.send(NodeId(2), 0, payload.clone()).unwrap();
            b.recv_timeout(Duration::from_secs(1)).unwrap()
        })
    });

    let replies: Vec<(NodeId, f64)> = (0..64u32).map(|i| (NodeId(i), (i as f64) * 0.01)).collect();
    let round = PullRound::new(replies);
    group.bench_function("pull_round_fastest_48_of_64", |bencher| {
        bencher.iter(|| round.fastest(48))
    });
    group.finish();
}

criterion_group!(benches, bench_fabric);
criterion_main!(benches);
