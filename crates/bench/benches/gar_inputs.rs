//! Criterion micro-benchmark for Fig. 3a: GAR aggregation time versus the
//! number of inputs `n`, at fixed dimension (CPU kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garfield_aggregation::{build_gar, GarKind};
use garfield_tensor::{Tensor, TensorRng};
use std::time::Duration;

fn bench_gar_inputs(c: &mut Criterion) {
    let d = 50_000;
    let mut rng = TensorRng::seed_from(1);
    let mut group = c.benchmark_group("fig3a_gar_vs_inputs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [7usize, 11, 15, 19] {
        let f = (n - 3) / 4;
        let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
        for kind in [
            GarKind::Average,
            GarKind::Median,
            GarKind::MultiKrum,
            GarKind::Mda,
            GarKind::Bulyan,
        ] {
            let gar = build_gar(&kind, n, if kind == GarKind::Average { 0 } else { f }).unwrap();
            group.bench_with_input(BenchmarkId::new(kind.as_str(), n), &inputs, |b, inputs| {
                b.iter(|| gar.aggregate(inputs).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gar_inputs);
criterion_main!(benches);
