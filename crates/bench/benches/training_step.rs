//! Criterion benchmark of one full training iteration of each system
//! (the building block behind the Figs. 6–8 throughput sweeps), on the small
//! trainable model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use garfield_core::{Controller, ExperimentConfig, SystemKind};
use std::time::Duration;

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_iteration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for system in [
        SystemKind::Vanilla,
        SystemKind::Ssmw,
        SystemKind::Msmw,
        SystemKind::CrashTolerant,
    ] {
        let mut cfg = ExperimentConfig::small();
        cfg.iterations = 3;
        cfg.eval_every = 0;
        let controller = Controller::new(cfg);
        group.bench_with_input(
            BenchmarkId::new("system", system.as_str()),
            &controller,
            |b, ctrl| b.iter(|| ctrl.run(system).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
