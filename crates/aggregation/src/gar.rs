//! The [`Gar`] trait and the paper's `init()`-style factory.

use crate::speculative::SpeculativeGar;
use crate::{
    AggregationError, AggregationResult, Average, Bulyan, DistanceCache, Engine, Krum, Mda, Median,
    MultiKrum,
};
use garfield_tensor::{GradientView, Tensor};
use std::fmt;
use std::str::FromStr;

/// What a GAR's selection phase observed about its inputs, for forensics.
///
/// Filled by [`Gar::aggregate_views_observed`]. The distance-based rules
/// (Krum, Multi-Krum, MDA, Bulyan) report which inputs survived selection and
/// how far every input sits from the surviving set; rules without a selection
/// phase (Average, Median) report all inputs as selected with zero distances.
/// Every rule reports per-input squared norms — the magnitude channel that
/// catches attacks the distance channel cannot (a zeroed gradient near
/// convergence sits *inside* the honest noise ball, closer to everyone than
/// the honest inputs are to each other, yet its norm gives it away).
///
/// The vectors are reused across rounds — callers keep one outcome alive and
/// pass it to every aggregation, so the steady state allocates nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectionOutcome {
    /// Indices of the inputs the rule kept, in the rule's selection order.
    pub selected: Vec<usize>,
    /// Per-input mean squared L2 distance to the selected inputs (excluding
    /// the input itself). `0.0` when the rule exposes no distance signal.
    pub distance: Vec<f64>,
    /// Per-input squared L2 norm (may be empty when the outcome was built by
    /// hand; the observed aggregation paths always fill it).
    pub norm: Vec<f64>,
}

impl SelectionOutcome {
    /// Marks every one of `n` inputs as selected with a zero distance
    /// profile — the outcome of a rule without a selection phase.
    pub fn fill_all_selected(&mut self, n: usize) {
        self.selected.clear();
        self.selected.extend(0..n);
        self.distance.clear();
        self.distance.resize(n, 0.0);
        self.norm.clear();
    }

    /// Indices of the inputs the rule rejected, ascending.
    pub fn excluded(&self) -> Vec<usize> {
        (0..self.distance.len())
            .filter(|i| !self.selected.contains(i))
            .collect()
    }
}

/// Fills `out[i]` with the mean squared distance from input `i` to the
/// selected inputs (skipping `i` itself), read from the prebuilt cache.
///
/// This is `O(n · |selected|)` scalar reads on top of the `O(n² d)` distance
/// work the rule already paid — the forensic profile is effectively free.
pub(crate) fn fill_distance_profile(cache: &DistanceCache, selected: &[usize], out: &mut Vec<f64>) {
    let n = cache.n();
    out.clear();
    out.resize(n, 0.0);
    for (i, slot) in out.iter_mut().enumerate() {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &j in selected {
            if j != i {
                sum += f64::from(cache.get(i, j));
                count += 1;
            }
        }
        if count > 0 {
            *slot = sum / count as f64;
        }
    }
}

/// Fills `out[i]` with the squared L2 norm of input `i` — the forensic
/// magnitude channel. `O(n · d)`, one extra row of the distance pass the
/// distance-based rules already paid for.
pub(crate) fn fill_norm_profile(inputs: &[GradientView<'_>], out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        inputs
            .iter()
            .map(|v| f64::from(garfield_tensor::squared_norm_slices(v.data()))),
    );
}

/// A gradient aggregation rule: a function `(R^d)^n -> R^d`.
///
/// This is the paper's uniform `aggregate()` interface (§3.2, *Aggregation*):
/// construction corresponds to `init(name, n, f)` via [`build_gar`], and the
/// rule is agnostic to whether its inputs are gradients or model vectors.
///
/// The required entry point is the zero-copy [`Gar::aggregate_views`], which
/// scores and selects over borrowed `&[f32]` slices and copies only the
/// output; [`Gar::aggregate`] is the owned-tensor convenience wrapper, which
/// preserves the input shape on the output.
pub trait Gar: Send + Sync {
    /// The rule's short name (e.g. `"median"`).
    fn name(&self) -> &'static str;

    /// Total number of input vectors the rule was configured for.
    fn n(&self) -> usize;

    /// Declared maximum number of Byzantine input vectors.
    fn f(&self) -> usize;

    /// Aggregates exactly `n` equal-length flat input views into one output,
    /// under the given execution [`Engine`]. Inputs are borrowed — the only
    /// copy a rule performs is into its output tensor.
    ///
    /// Sequential and parallel engines produce **bit-identical** outputs.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::WrongInputCount`],
    /// [`AggregationError::HeterogeneousShapes`] (unequal view lengths) or
    /// [`AggregationError::EmptyInput`] when the inputs are malformed.
    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor>;

    /// Aggregates exactly `n` equally-shaped input tensors into one output
    /// of the same shape, using the machine-sized engine.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::WrongInputCount`],
    /// [`AggregationError::HeterogeneousShapes`] or
    /// [`AggregationError::EmptyInput`] when the inputs are malformed.
    fn aggregate(&self, inputs: &[Tensor]) -> AggregationResult<Tensor> {
        crate::validate_inputs(inputs, self.n())?;
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let flat = self.aggregate_views(&views, &Engine::auto())?;
        Ok(flat
            .reshape(inputs[0].shape().clone())
            .expect("aggregation preserves the element count"))
    }

    /// Like [`Gar::aggregate_views`], but additionally reports which inputs
    /// the rule's selection phase kept and how far each input sits from the
    /// surviving set, for per-peer suspicion scoring.
    ///
    /// Outputs are **bit-identical** to [`Gar::aggregate_views`]; the
    /// distance-based rules derive the report from the pairwise-distance
    /// cache they already built, so the observation costs `O(n · |selected|)`
    /// scalar reads. The default implementation (rules without a selection
    /// phase) marks every input selected with a zero distance profile; every
    /// implementation fills the squared-norm profile.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate_views`].
    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        let out = self.aggregate_views(inputs, engine)?;
        outcome.fill_all_selected(inputs.len());
        fill_norm_profile(inputs, &mut outcome.norm);
        Ok(out)
    }

    /// Whether the rule provides Byzantine resilience (everything except `Average`).
    fn is_byzantine_resilient(&self) -> bool {
        true
    }

    /// For speculative rules: whether the fast path has permanently yielded
    /// to the robust fallback. `None` for non-speculative rules.
    fn fell_back(&self) -> Option<bool> {
        None
    }

    /// Forces a speculative rule onto its robust fallback as if its own
    /// consistency check had tripped. No-op for non-speculative rules.
    ///
    /// This is the receiving end of the sharded runtime's cluster-wide
    /// sticky OR: when one shard's fast path trips, its siblings are told to
    /// fall back too, so every slice of the model is aggregated by the same
    /// rule from that round on.
    fn force_fallback(&self) {}
}

/// The aggregation rules shipped with Garfield.
///
/// `GarKind` is the single source of truth for GAR construction: CLI flags,
/// config JSON and bench sweeps all parse into it (via [`FromStr`]) and
/// [`build_gar`] consumes it. The canonical text form round-trips through
/// [`fmt::Display`], including the composite
/// `speculative(<fallback>)` shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GarKind {
    /// Plain averaging (the vanilla, non-resilient baseline).
    Average,
    /// Coordinate-wise median.
    Median,
    /// Krum: returns the single smallest-scoring gradient.
    Krum,
    /// Multi-Krum: averages the `n - f - 2` smallest-scoring gradients.
    MultiKrum,
    /// Minimum-Diameter Averaging.
    Mda,
    /// Bulyan of Multi-Krum.
    Bulyan,
    /// Speculative fast path: plain averaging plus a cheap consistency
    /// check, replaying the round through `fallback` once the check trips
    /// (arXiv:1911.07537). Written `speculative(<fallback>)`.
    Speculative {
        /// The robust rule the speculative path falls back to on suspicion.
        fallback: Box<GarKind>,
    },
}

impl GarKind {
    /// All primitive kinds, in the order the paper's micro-benchmark
    /// (Fig. 3) plots them. The composite `Speculative` shape is not listed:
    /// it wraps a primitive rather than standing on its own.
    pub fn all() -> [GarKind; 6] {
        [
            GarKind::Bulyan,
            GarKind::Mda,
            GarKind::MultiKrum,
            GarKind::Median,
            GarKind::Krum,
            GarKind::Average,
        ]
    }

    /// The canonical lowercase head name (`"speculative"` for the composite
    /// shape — use [`fmt::Display`] for the full parseable form).
    pub fn as_str(&self) -> &'static str {
        match self {
            GarKind::Average => "average",
            GarKind::Median => "median",
            GarKind::Krum => "krum",
            GarKind::MultiKrum => "multi-krum",
            GarKind::Mda => "mda",
            GarKind::Bulyan => "bulyan",
            GarKind::Speculative { .. } => "speculative",
        }
    }

    /// Whether the rule decomposes coordinate-wise: applying it to each
    /// contiguous slice of the inputs independently equals slicing its output
    /// on the full vectors, bit for bit, given identical input membership.
    ///
    /// This is the soundness condition for the sharded parameter server —
    /// only decomposable rules may run with `shards > 1`. Average (a
    /// per-coordinate mean) and Median (per-coordinate by definition)
    /// qualify; the distance-based rules (Krum, Multi-Krum, MDA, Bulyan)
    /// score whole vectors by pairwise L2 distances, so their selection on a
    /// slice can differ from their selection on the full vector. The
    /// speculative composite decomposes iff its fallback does (its fast path
    /// is an average).
    pub fn is_coordinate_decomposable(&self) -> bool {
        match self {
            GarKind::Average | GarKind::Median => true,
            GarKind::Krum | GarKind::MultiKrum | GarKind::Mda | GarKind::Bulyan => false,
            GarKind::Speculative { fallback } => fallback.is_coordinate_decomposable(),
        }
    }

    /// The minimum number of inputs required to tolerate `f` Byzantine ones.
    /// The speculative shape inherits its fallback's requirement (the replay
    /// path must be able to run on the same inputs).
    pub fn minimum_inputs(&self, f: usize) -> usize {
        match self {
            GarKind::Average => 1,
            GarKind::Median | GarKind::Mda => 2 * f + 1,
            GarKind::Krum | GarKind::MultiKrum => 2 * f + 3,
            GarKind::Bulyan => 4 * f + 3,
            GarKind::Speculative { fallback } => fallback.minimum_inputs(f),
        }
    }
}

impl fmt::Display for GarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GarKind::Speculative { fallback } => write!(f, "speculative({fallback})"),
            other => f.write_str(other.as_str()),
        }
    }
}

impl FromStr for GarKind {
    type Err = AggregationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let trimmed = s.trim();
        let lower = trimmed.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("speculative") {
            let inner = rest
                .trim()
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| AggregationError::UnknownRule(trimmed.to_string()))?;
            let fallback = inner.parse::<GarKind>()?;
            return Ok(GarKind::Speculative {
                fallback: Box::new(fallback),
            });
        }
        match lower.as_str() {
            "average" | "mean" => Ok(GarKind::Average),
            "median" => Ok(GarKind::Median),
            "krum" => Ok(GarKind::Krum),
            "multi-krum" | "multikrum" | "multi_krum" => Ok(GarKind::MultiKrum),
            "mda" => Ok(GarKind::Mda),
            "bulyan" => Ok(GarKind::Bulyan),
            other => Err(AggregationError::UnknownRule(other.to_string())),
        }
    }
}

/// A transparent [`Gar`] wrapper counting aggregations into the
/// `garfield_gar_selections_total{gar=...}` metric family. Pure delegation
/// otherwise: outputs are bit-identical to the wrapped rule, and with
/// observability disabled the count is a load and a branch.
struct CountedGar {
    inner: Box<dyn Gar>,
    selections: garfield_obs::Counter,
}

impl Gar for CountedGar {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn f(&self) -> usize {
        self.inner.f()
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        self.selections.inc();
        self.inner.aggregate_views(inputs, engine)
    }

    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        self.selections.inc();
        self.inner.aggregate_views_observed(inputs, engine, outcome)
    }

    fn is_byzantine_resilient(&self) -> bool {
        self.inner.is_byzantine_resilient()
    }

    fn fell_back(&self) -> Option<bool> {
        self.inner.fell_back()
    }

    fn force_fallback(&self) {
        self.inner.force_fallback();
    }
}

/// Builds a GAR from its kind, total input count `n` and Byzantine bound `f`.
///
/// This is the paper's `init(name, n, f)`, typed: callers parse whatever
/// string they hold into a [`GarKind`] first (CLI, JSON, sweeps), so the
/// name↔rule mapping lives in exactly one place.
///
/// # Errors
///
/// Returns [`AggregationError::ResilienceViolated`] when `(n, f)` does not
/// satisfy the rule's requirement, or when a `Speculative` fallback is not a
/// primitive Byzantine-resilient rule.
///
/// ```rust
/// use garfield_aggregation::{build_gar, GarKind};
/// let gar = build_gar(&GarKind::Bulyan, 7, 1).unwrap();
/// assert_eq!(gar.name(), "bulyan");
/// assert!(build_gar(&GarKind::Bulyan, 6, 1).is_err());
/// let spec = "speculative(multi-krum)".parse().unwrap();
/// assert_eq!(build_gar(&spec, 7, 1).unwrap().name(), "speculative");
/// ```
pub fn build_gar(kind: &GarKind, n: usize, f: usize) -> AggregationResult<Box<dyn Gar>> {
    let inner: Box<dyn Gar> = match kind {
        GarKind::Average => Box::new(Average::new(n)?),
        GarKind::Median => Box::new(Median::new(n, f)?),
        GarKind::Krum => Box::new(Krum::new(n, f)?),
        GarKind::MultiKrum => Box::new(MultiKrum::new(n, f)?),
        GarKind::Mda => Box::new(Mda::new(n, f)?),
        GarKind::Bulyan => Box::new(Bulyan::new(n, f)?),
        GarKind::Speculative { fallback } => {
            if matches!(
                fallback.as_ref(),
                GarKind::Average | GarKind::Speculative { .. }
            ) {
                return Err(AggregationError::ResilienceViolated {
                    rule: "speculative",
                    n,
                    f,
                    requirement: "fallback must be a primitive Byzantine-resilient rule",
                });
            }
            Box::new(SpeculativeGar::new(build_gar(fallback, n, f)?, n, f))
        }
    };
    let selections = garfield_obs::metrics::counter(
        "garfield_gar_selections_total",
        "Aggregations performed, by GAR.",
        &[("gar", kind.as_str())],
    );
    Ok(Box::new(CountedGar { inner, selections }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_display_round_trip() {
        for kind in GarKind::all() {
            let parsed: GarKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("nonsense".parse::<GarKind>().is_err());
        assert_eq!("MultiKrum".parse::<GarKind>().unwrap(), GarKind::MultiKrum);
    }

    #[test]
    fn speculative_kind_parses_and_round_trips() {
        let spec: GarKind = "speculative(multi-krum)".parse().unwrap();
        assert_eq!(
            spec,
            GarKind::Speculative {
                fallback: Box::new(GarKind::MultiKrum)
            }
        );
        assert_eq!(spec.to_string(), "speculative(multi-krum)");
        assert_eq!(spec.as_str(), "speculative");
        assert_eq!(spec.to_string().parse::<GarKind>().unwrap(), spec);
        // Whitespace and case are forgiven; the fallback alias table applies.
        assert_eq!(
            " Speculative( MultiKrum ) ".parse::<GarKind>().unwrap(),
            spec
        );
        // The requirement is the fallback's: the replay must be able to run.
        assert_eq!(spec.minimum_inputs(3), GarKind::MultiKrum.minimum_inputs(3));
        // A bare head or unbalanced parens are not a rule.
        assert!("speculative".parse::<GarKind>().is_err());
        assert!("speculative(".parse::<GarKind>().is_err());
        assert!("speculative(warp)".parse::<GarKind>().is_err());
    }

    #[test]
    fn minimum_inputs_match_the_paper() {
        assert_eq!(GarKind::Median.minimum_inputs(3), 7);
        assert_eq!(GarKind::Mda.minimum_inputs(3), 7);
        assert_eq!(GarKind::Krum.minimum_inputs(3), 9);
        assert_eq!(GarKind::MultiKrum.minimum_inputs(3), 9);
        assert_eq!(GarKind::Bulyan.minimum_inputs(3), 15);
        assert_eq!(GarKind::Average.minimum_inputs(3), 1);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in GarKind::all() {
            let n = kind.minimum_inputs(1).max(3);
            let gar = build_gar(&kind, n, 1).unwrap();
            assert_eq!(gar.n(), n);
            assert_eq!(gar.name(), kind.as_str());
        }
        let spec = GarKind::Speculative {
            fallback: Box::new(GarKind::Median),
        };
        let gar = build_gar(&spec, 5, 1).unwrap();
        assert_eq!(gar.name(), "speculative");
        assert_eq!(gar.fell_back(), Some(false));
    }

    #[test]
    fn factory_rejects_insufficient_n() {
        assert!(build_gar(&GarKind::Krum, 4, 1).is_err());
        assert!(build_gar(&GarKind::Bulyan, 6, 1).is_err());
        assert!(build_gar(&GarKind::Median, 2, 1).is_err());
        assert!(build_gar(&"median".parse::<GarKind>().unwrap(), 3, 1).is_ok());
        assert!("wat".parse::<GarKind>().is_err());
    }

    #[test]
    fn factory_rejects_degenerate_speculative_fallbacks() {
        // The fallback requirement propagates: n too small for the replay.
        let spec = GarKind::Speculative {
            fallback: Box::new(GarKind::Krum),
        };
        assert!(build_gar(&spec, 4, 1).is_err());
        // A non-resilient or nested fallback defeats the point of falling back.
        for fallback in [
            GarKind::Average,
            GarKind::Speculative {
                fallback: Box::new(GarKind::Median),
            },
        ] {
            let spec = GarKind::Speculative {
                fallback: Box::new(fallback),
            };
            assert!(matches!(
                build_gar(&spec, 9, 1),
                Err(AggregationError::ResilienceViolated {
                    rule: "speculative",
                    ..
                })
            ));
        }
    }

    #[test]
    fn observed_aggregation_is_bit_identical_and_flags_the_outlier() {
        use garfield_tensor::TensorRng;
        let mut rng = TensorRng::seed_from(77);
        for kind in GarKind::all() {
            let f = 1;
            let n = kind.minimum_inputs(f).max(7);
            let mut inputs: Vec<Tensor> = (0..n - 1)
                .map(|_| {
                    Tensor::ones(16usize)
                        .try_add(&rng.normal_tensor(16usize).scale(0.05))
                        .unwrap()
                })
                .collect();
            inputs.push(Tensor::full(16usize, 1e4)); // Byzantine outlier at n-1
            let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
            let gar = build_gar(&kind, n, f).unwrap();
            let engine = Engine::sequential();

            let plain = gar.aggregate_views(&views, &engine).unwrap();
            let mut outcome = SelectionOutcome::default();
            let observed = gar
                .aggregate_views_observed(&views, &engine, &mut outcome)
                .unwrap();
            let plain_bits: Vec<u32> = plain.data().iter().map(|v| v.to_bits()).collect();
            let observed_bits: Vec<u32> = observed.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(plain_bits, observed_bits, "{kind} observed output differs");

            assert_eq!(outcome.distance.len(), n, "{kind} profile length");
            assert!(!outcome.selected.is_empty(), "{kind} selected nothing");
            // Every rule reports the magnitude channel, and the outlier's
            // huge vector dominates it.
            assert_eq!(outcome.norm.len(), n, "{kind} norm profile length");
            let max_norm = (0..n)
                .max_by(|&a, &b| outcome.norm[a].total_cmp(&outcome.norm[b]))
                .unwrap();
            assert_eq!(max_norm, n - 1, "{kind} norms: {:?}", outcome.norm);
            match kind {
                // Distance-based rules: the outlier is excluded and carries
                // the largest distance to the selected set.
                GarKind::Krum | GarKind::MultiKrum | GarKind::Mda | GarKind::Bulyan => {
                    assert!(
                        !outcome.selected.contains(&(n - 1)),
                        "{kind} selected the outlier"
                    );
                    assert!(outcome.excluded().contains(&(n - 1)));
                    let max_idx = (0..n)
                        .max_by(|&a, &b| outcome.distance[a].total_cmp(&outcome.distance[b]))
                        .unwrap();
                    assert_eq!(max_idx, n - 1, "{kind} distances: {:?}", outcome.distance);
                }
                // Selection-free rules: everything selected, zero profile.
                GarKind::Average | GarKind::Median => {
                    assert_eq!(outcome.selected, (0..n).collect::<Vec<_>>());
                    assert!(outcome.distance.iter().all(|&d| d == 0.0));
                    assert!(outcome.excluded().is_empty());
                }
                GarKind::Speculative { .. } => unreachable!("all() lists primitives only"),
            }
        }
    }

    #[test]
    fn coordinate_decomposability_matches_the_rules_math() {
        assert!(GarKind::Average.is_coordinate_decomposable());
        assert!(GarKind::Median.is_coordinate_decomposable());
        for kind in [
            GarKind::Krum,
            GarKind::MultiKrum,
            GarKind::Mda,
            GarKind::Bulyan,
        ] {
            assert!(!kind.is_coordinate_decomposable(), "{kind}");
        }
        // The speculative composite inherits its fallback's property.
        let spec_median = GarKind::Speculative {
            fallback: Box::new(GarKind::Median),
        };
        assert!(spec_median.is_coordinate_decomposable());
        let spec_krum = GarKind::Speculative {
            fallback: Box::new(GarKind::MultiKrum),
        };
        assert!(!spec_krum.is_coordinate_decomposable());
    }

    #[test]
    fn force_fallback_latches_speculative_rules_and_is_inert_elsewhere() {
        let spec = build_gar(
            &GarKind::Speculative {
                fallback: Box::new(GarKind::Median),
            },
            5,
            1,
        )
        .unwrap();
        assert_eq!(spec.fell_back(), Some(false));
        // Forwarded through the CountedGar wrapper to the latch.
        spec.force_fallback();
        assert_eq!(spec.fell_back(), Some(true));
        // Idempotent.
        spec.force_fallback();
        assert_eq!(spec.fell_back(), Some(true));

        // Non-speculative rules ignore the hook.
        let median = build_gar(&GarKind::Median, 5, 1).unwrap();
        median.force_fallback();
        assert_eq!(median.fell_back(), None);
    }

    #[test]
    fn average_is_not_byzantine_resilient_but_others_are() {
        assert!(!build_gar(&GarKind::Average, 3, 0)
            .unwrap()
            .is_byzantine_resilient());
        assert!(build_gar(&GarKind::Median, 3, 1)
            .unwrap()
            .is_byzantine_resilient());
        assert!(build_gar(&GarKind::Bulyan, 7, 1)
            .unwrap()
            .is_byzantine_resilient());
    }
}
