//! The [`Gar`] trait and the paper's `init()`-style factory.

use crate::{
    AggregationError, AggregationResult, Average, Bulyan, Engine, Krum, Mda, Median, MultiKrum,
};
use garfield_tensor::{GradientView, Tensor};
use std::fmt;
use std::str::FromStr;

/// A gradient aggregation rule: a function `(R^d)^n -> R^d`.
///
/// This is the paper's uniform `aggregate()` interface (§3.2, *Aggregation*):
/// construction corresponds to `init(name, n, f)` via [`build_gar`], and the
/// rule is agnostic to whether its inputs are gradients or model vectors.
///
/// The required entry point is the zero-copy [`Gar::aggregate_views`], which
/// scores and selects over borrowed `&[f32]` slices and copies only the
/// output; [`Gar::aggregate`] is the owned-tensor convenience wrapper, which
/// preserves the input shape on the output.
pub trait Gar: Send + Sync {
    /// The rule's short name (e.g. `"median"`).
    fn name(&self) -> &'static str;

    /// Total number of input vectors the rule was configured for.
    fn n(&self) -> usize;

    /// Declared maximum number of Byzantine input vectors.
    fn f(&self) -> usize;

    /// Aggregates exactly `n` equal-length flat input views into one output,
    /// under the given execution [`Engine`]. Inputs are borrowed — the only
    /// copy a rule performs is into its output tensor.
    ///
    /// Sequential and parallel engines produce **bit-identical** outputs.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::WrongInputCount`],
    /// [`AggregationError::HeterogeneousShapes`] (unequal view lengths) or
    /// [`AggregationError::EmptyInput`] when the inputs are malformed.
    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor>;

    /// Aggregates exactly `n` equally-shaped input tensors into one output
    /// of the same shape, using the machine-sized engine.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::WrongInputCount`],
    /// [`AggregationError::HeterogeneousShapes`] or
    /// [`AggregationError::EmptyInput`] when the inputs are malformed.
    fn aggregate(&self, inputs: &[Tensor]) -> AggregationResult<Tensor> {
        crate::validate_inputs(inputs, self.n())?;
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let flat = self.aggregate_views(&views, &Engine::auto())?;
        Ok(flat
            .reshape(inputs[0].shape().clone())
            .expect("aggregation preserves the element count"))
    }

    /// Whether the rule provides Byzantine resilience (everything except `Average`).
    fn is_byzantine_resilient(&self) -> bool {
        true
    }
}

/// The aggregation rules shipped with Garfield.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GarKind {
    /// Plain averaging (the vanilla, non-resilient baseline).
    Average,
    /// Coordinate-wise median.
    Median,
    /// Krum: returns the single smallest-scoring gradient.
    Krum,
    /// Multi-Krum: averages the `n - f - 2` smallest-scoring gradients.
    MultiKrum,
    /// Minimum-Diameter Averaging.
    Mda,
    /// Bulyan of Multi-Krum.
    Bulyan,
}

impl GarKind {
    /// All kinds, in the order the paper's micro-benchmark (Fig. 3) plots them.
    pub fn all() -> [GarKind; 6] {
        [
            GarKind::Bulyan,
            GarKind::Mda,
            GarKind::MultiKrum,
            GarKind::Median,
            GarKind::Krum,
            GarKind::Average,
        ]
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            GarKind::Average => "average",
            GarKind::Median => "median",
            GarKind::Krum => "krum",
            GarKind::MultiKrum => "multi-krum",
            GarKind::Mda => "mda",
            GarKind::Bulyan => "bulyan",
        }
    }

    /// The minimum number of inputs required to tolerate `f` Byzantine ones.
    pub fn minimum_inputs(self, f: usize) -> usize {
        match self {
            GarKind::Average => 1,
            GarKind::Median | GarKind::Mda => 2 * f + 1,
            GarKind::Krum | GarKind::MultiKrum => 2 * f + 3,
            GarKind::Bulyan => 4 * f + 3,
        }
    }
}

impl fmt::Display for GarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for GarKind {
    type Err = AggregationError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "average" | "mean" => Ok(GarKind::Average),
            "median" => Ok(GarKind::Median),
            "krum" => Ok(GarKind::Krum),
            "multi-krum" | "multikrum" | "multi_krum" => Ok(GarKind::MultiKrum),
            "mda" => Ok(GarKind::Mda),
            "bulyan" => Ok(GarKind::Bulyan),
            other => Err(AggregationError::UnknownRule(other.to_string())),
        }
    }
}

/// A transparent [`Gar`] wrapper counting aggregations into the
/// `garfield_gar_selections_total{gar=...}` metric family. Pure delegation
/// otherwise: outputs are bit-identical to the wrapped rule, and with
/// observability disabled the count is a load and a branch.
struct CountedGar {
    inner: Box<dyn Gar>,
    selections: garfield_obs::Counter,
}

impl Gar for CountedGar {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn f(&self) -> usize {
        self.inner.f()
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        self.selections.inc();
        self.inner.aggregate_views(inputs, engine)
    }

    fn is_byzantine_resilient(&self) -> bool {
        self.inner.is_byzantine_resilient()
    }
}

/// Builds a GAR from its kind, total input count `n` and Byzantine bound `f`.
///
/// This is the paper's `init(name, n, f)`.
///
/// # Errors
///
/// Returns [`AggregationError::ResilienceViolated`] when `(n, f)` does not
/// satisfy the rule's requirement.
///
/// ```rust
/// use garfield_aggregation::{build_gar, GarKind};
/// let gar = build_gar(GarKind::Bulyan, 7, 1).unwrap();
/// assert_eq!(gar.name(), "bulyan");
/// assert!(build_gar(GarKind::Bulyan, 6, 1).is_err());
/// ```
pub fn build_gar(kind: GarKind, n: usize, f: usize) -> AggregationResult<Box<dyn Gar>> {
    let inner: Box<dyn Gar> = match kind {
        GarKind::Average => Box::new(Average::new(n)?),
        GarKind::Median => Box::new(Median::new(n, f)?),
        GarKind::Krum => Box::new(Krum::new(n, f)?),
        GarKind::MultiKrum => Box::new(MultiKrum::new(n, f)?),
        GarKind::Mda => Box::new(Mda::new(n, f)?),
        GarKind::Bulyan => Box::new(Bulyan::new(n, f)?),
    };
    let selections = garfield_obs::metrics::counter(
        "garfield_gar_selections_total",
        "Aggregations performed, by GAR.",
        &[("gar", kind.as_str())],
    );
    Ok(Box::new(CountedGar { inner, selections }))
}

/// Builds a GAR from a string name, mirroring the paper's `init("median", n, f)`.
///
/// # Errors
///
/// Returns [`AggregationError::UnknownRule`] for unknown names and
/// [`AggregationError::ResilienceViolated`] for invalid `(n, f)` pairs.
pub fn build_gar_by_name(name: &str, n: usize, f: usize) -> AggregationResult<Box<dyn Gar>> {
    build_gar(name.parse::<GarKind>()?, n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_display_round_trip() {
        for kind in GarKind::all() {
            let parsed: GarKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("nonsense".parse::<GarKind>().is_err());
        assert_eq!("MultiKrum".parse::<GarKind>().unwrap(), GarKind::MultiKrum);
    }

    #[test]
    fn minimum_inputs_match_the_paper() {
        assert_eq!(GarKind::Median.minimum_inputs(3), 7);
        assert_eq!(GarKind::Mda.minimum_inputs(3), 7);
        assert_eq!(GarKind::Krum.minimum_inputs(3), 9);
        assert_eq!(GarKind::MultiKrum.minimum_inputs(3), 9);
        assert_eq!(GarKind::Bulyan.minimum_inputs(3), 15);
        assert_eq!(GarKind::Average.minimum_inputs(3), 1);
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in GarKind::all() {
            let n = kind.minimum_inputs(1).max(3);
            let gar = build_gar(kind, n, 1).unwrap();
            assert_eq!(gar.n(), n);
            assert_eq!(gar.name(), kind.as_str());
        }
    }

    #[test]
    fn factory_rejects_insufficient_n() {
        assert!(build_gar(GarKind::Krum, 4, 1).is_err());
        assert!(build_gar(GarKind::Bulyan, 6, 1).is_err());
        assert!(build_gar(GarKind::Median, 2, 1).is_err());
        assert!(build_gar_by_name("median", 3, 1).is_ok());
        assert!(build_gar_by_name("wat", 3, 1).is_err());
    }

    #[test]
    fn average_is_not_byzantine_resilient_but_others_are() {
        assert!(!build_gar(GarKind::Average, 3, 0)
            .unwrap()
            .is_byzantine_resilient());
        assert!(build_gar(GarKind::Median, 3, 1)
            .unwrap()
            .is_byzantine_resilient());
        assert!(build_gar(GarKind::Bulyan, 7, 1)
            .unwrap()
            .is_byzantine_resilient());
    }
}
