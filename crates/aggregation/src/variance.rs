//! The `measure_variance` tool of §3.1.
//!
//! Each GAR is only provably Byzantine-resilient while the workers' gradient
//! variance is small relative to the true gradient norm:
//!
//! ```text
//! ∃ κ > 1 :  κ · Δ(GAR) · sqrt(E‖g_i − E g_i‖²)  ≤  ‖∇L(θ)‖
//! ```
//!
//! where `Δ` depends on the GAR and on `(n, f)`. The paper ships a small
//! script (`measure_variance.py`) that runs a few training steps, estimates
//! the true gradient with a huge batch, and reports how often the condition
//! holds. [`VarianceProbe`] is the Rust equivalent.

use crate::{average_views, Engine, GarKind};
use garfield_ml::{Dataset, Model, Optimizer, Sgd};
use garfield_tensor::{squared_l2_distance_slices, GradientView, Tensor};

/// The GAR-specific factor `Δ` of the bounded-variance condition (§3.1).
///
/// Returns `None` for GARs the paper gives no formula for (Average, Bulyan);
/// Bulyan inherits Multi-Krum's condition through its selection phase, which
/// callers can request explicitly. A speculative shape inherits its
/// fallback's condition — the fallback is what must hold when it matters.
pub fn delta_factor(gar: &GarKind, n: usize, f: usize) -> Option<f64> {
    if let GarKind::Speculative { fallback } = gar {
        return delta_factor(fallback, n, f);
    }
    let n = n as f64;
    let f = f as f64;
    match gar {
        GarKind::Mda => {
            if n - f <= 0.0 {
                None
            } else {
                Some(2.0 * (2.0_f64).sqrt() * f / (n - f))
            }
        }
        GarKind::Krum | GarKind::MultiKrum => {
            let denom = n - 2.0 * f - 2.0;
            if denom <= 0.0 {
                None
            } else {
                let inner = n - f + (f * (n - f - 2.0) + f * f * (n - f - 1.0)) / denom;
                Some((2.0 * inner).sqrt())
            }
        }
        GarKind::Median => Some((n - f).max(0.0).sqrt()),
        GarKind::Average | GarKind::Bulyan | GarKind::Speculative { .. } => None,
    }
}

/// The outcome of one probed training step.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarianceStep {
    /// Training step index.
    pub step: usize,
    /// Norm of the large-batch "true" gradient `‖∇L(θ)‖`.
    pub true_gradient_norm: f64,
    /// Empirical `sqrt(E‖g_i − E g_i‖²)` across the simulated workers.
    pub gradient_std: f64,
    /// Whether `Δ · gradient_std ≤ true_gradient_norm` for each probed GAR,
    /// stored as `(gar, satisfied)` pairs.
    pub satisfied: Vec<(GarKind, bool)>,
}

/// Aggregate report over all probed steps.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarianceReport {
    /// Number of workers assumed by the probe.
    pub n: usize,
    /// Number of Byzantine workers assumed by the probe.
    pub f: usize,
    /// Per-worker batch size used for the noisy gradient estimates.
    pub batch_size: usize,
    /// Per-step measurements.
    pub steps: Vec<VarianceStep>,
}

impl VarianceReport {
    /// Fraction of probed steps in which the named GAR's condition held.
    pub fn satisfied_fraction(&self, gar: &GarKind) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let hits = self
            .steps
            .iter()
            .filter(|s| s.satisfied.iter().any(|(g, ok)| g == gar && *ok))
            .count();
        hits as f64 / self.steps.len() as f64
    }
}

/// Configuration of the variance measurement tool.
#[derive(Debug, Clone)]
pub struct VarianceProbe {
    /// Number of workers.
    pub n: usize,
    /// Declared number of Byzantine workers.
    pub f: usize,
    /// Per-worker batch size.
    pub batch_size: usize,
    /// Number of training steps to probe.
    pub steps: usize,
    /// Learning rate of the probe's SGD steps.
    pub learning_rate: f32,
    /// GARs whose condition should be checked.
    pub gars: Vec<GarKind>,
}

impl Default for VarianceProbe {
    fn default() -> Self {
        VarianceProbe {
            n: 10,
            f: 2,
            batch_size: 32,
            steps: 10,
            learning_rate: 0.05,
            gars: vec![GarKind::Median, GarKind::Krum, GarKind::Mda],
        }
    }
}

impl VarianceProbe {
    /// Runs the probe: trains `model` on `dataset` for a few steps and checks
    /// the bounded-variance condition of each configured GAR at every step.
    ///
    /// The "true" gradient is estimated on the full dataset (the paper uses a
    /// huge batch); worker gradients are estimated on independent mini-batches.
    pub fn run(&self, model: &mut dyn Model, dataset: &Dataset) -> VarianceReport {
        let mut opt = Sgd::new(self.learning_rate);
        let mut steps = Vec::with_capacity(self.steps);
        let full = dataset.full_batch().expect("dataset is non-empty");
        let engine = Engine::auto();
        for step in 0..self.steps {
            // Per-worker noisy gradients.
            let mut grads: Vec<Tensor> = Vec::with_capacity(self.n);
            for w in 0..self.n {
                let batch = dataset
                    .batch(step * self.n + w, self.batch_size)
                    .expect("batch size validated");
                grads.push(model.gradient(&batch).1);
            }
            // Empirical mean and deviation of worker gradients, through the
            // engine's zero-copy averaging and slice-distance kernels.
            let views: Vec<GradientView<'_>> = grads.iter().map(GradientView::from).collect();
            let mean = Tensor::from(average_views(&views, &engine));
            let var: f64 = views
                .iter()
                .map(|g| squared_l2_distance_slices(g.data(), mean.data()) as f64)
                .sum::<f64>()
                / views.len() as f64;
            let gradient_std = var.sqrt();

            // Large-batch "true" gradient.
            let (_, true_grad) = model.gradient(&full);
            let true_norm = true_grad.norm() as f64;

            let satisfied = self
                .gars
                .iter()
                .map(|gar| {
                    let ok = delta_factor(gar, self.n, self.f)
                        .map(|delta| delta * gradient_std <= true_norm)
                        .unwrap_or(false);
                    (gar.clone(), ok)
                })
                .collect();
            steps.push(VarianceStep {
                step,
                true_gradient_norm: true_norm,
                gradient_std,
                satisfied,
            });

            // Advance the model with the mean gradient so later steps probe new states.
            opt.step(model, &mean)
                .expect("gradient matches parameter count");
        }
        VarianceReport {
            n: self.n,
            f: self.f,
            batch_size: self.batch_size,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_ml::{DatasetKind, Mlp};
    use garfield_tensor::TensorRng;

    #[test]
    fn delta_factors_match_the_paper_formulas() {
        // MDA: 2*sqrt(2)*f/(n-f) with n=10, f=2 -> 2*1.4142*2/8
        let mda = delta_factor(&GarKind::Mda, 10, 2).unwrap();
        assert!((mda - 2.0 * 2.0_f64.sqrt() * 2.0 / 8.0).abs() < 1e-9);
        // Median: sqrt(n - f)
        let med = delta_factor(&GarKind::Median, 10, 2).unwrap();
        assert!((med - 8.0_f64.sqrt()).abs() < 1e-9);
        // Krum formula, n=10, f=2: sqrt(2*(8 + (2*6 + 4*7)/4)) = sqrt(2*18)
        let krum = delta_factor(&GarKind::Krum, 10, 2).unwrap();
        assert!((krum - (36.0_f64).sqrt()).abs() < 1e-9);
        assert!(delta_factor(&GarKind::Average, 10, 2).is_none());
        assert!(delta_factor(&GarKind::Krum, 6, 2).is_none());
        // The speculative shape inherits the fallback's condition.
        let spec = GarKind::Speculative {
            fallback: Box::new(GarKind::Krum),
        };
        assert_eq!(
            delta_factor(&spec, 10, 2),
            delta_factor(&GarKind::Krum, 10, 2)
        );
    }

    #[test]
    fn larger_f_makes_the_condition_harder() {
        let small = delta_factor(&GarKind::Mda, 20, 1).unwrap();
        let large = delta_factor(&GarKind::Mda, 20, 5).unwrap();
        assert!(large > small);
    }

    #[test]
    fn probe_runs_and_reports_sane_numbers() {
        let mut rng = TensorRng::seed_from(21);
        let ds = Dataset::synthetic(DatasetKind::Tiny, 256, &mut rng);
        let mut model = Mlp::tiny(&mut rng);
        let probe = VarianceProbe {
            n: 6,
            f: 1,
            batch_size: 16,
            steps: 3,
            learning_rate: 0.05,
            gars: vec![GarKind::Median, GarKind::Mda, GarKind::Krum],
        };
        let report = probe.run(&mut model, &ds);
        assert_eq!(report.steps.len(), 3);
        for step in &report.steps {
            assert!(step.true_gradient_norm.is_finite() && step.true_gradient_norm > 0.0);
            assert!(step.gradient_std.is_finite() && step.gradient_std >= 0.0);
            assert_eq!(step.satisfied.len(), 3);
        }
        // MDA has the loosest Δ, so it should hold at least as often as Krum.
        assert!(
            report.satisfied_fraction(&GarKind::Mda) >= report.satisfied_fraction(&GarKind::Krum)
        );
        // Fractions are valid probabilities.
        for gar in [GarKind::Median, GarKind::Mda, GarKind::Krum] {
            let fr = report.satisfied_fraction(&gar);
            assert!((0.0..=1.0).contains(&fr));
        }
    }

    #[test]
    fn empty_report_yields_zero_fraction() {
        let report = VarianceReport {
            n: 5,
            f: 1,
            batch_size: 8,
            steps: vec![],
        };
        assert_eq!(report.satisfied_fraction(&GarKind::Median), 0.0);
    }
}
