//! Plain averaging — the vanilla baseline GAR.

use crate::engine::average_views;
use crate::{validate_views, AggregationError, AggregationResult, Engine, Gar};
use garfield_tensor::{GradientView, Tensor};

/// Coordinate-wise arithmetic mean of the inputs.
///
/// This is what vanilla TensorFlow / PyTorch parameter servers do. It has no
/// Byzantine resilience whatsoever — a single corrupted input can move the
/// output arbitrarily — and serves as the paper's vanilla baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Average {
    n: usize,
}

impl Average {
    /// Creates an averaging rule over `n` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] when `n == 0`.
    pub fn new(n: usize) -> AggregationResult<Self> {
        if n == 0 {
            return Err(AggregationError::ResilienceViolated {
                rule: "average",
                n,
                f: 0,
                requirement: "n >= 1",
            });
        }
        Ok(Average { n })
    }
}

impl Gar for Average {
    fn name(&self) -> &'static str {
        "average"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        0
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        Ok(Tensor::from(average_views(inputs, engine)))
    }

    fn is_byzantine_resilient(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_inputs_coordinate_wise() {
        let avg = Average::new(3).unwrap();
        let inputs = vec![
            Tensor::from_slice(&[1.0, 2.0]),
            Tensor::from_slice(&[3.0, 4.0]),
            Tensor::from_slice(&[5.0, 6.0]),
        ];
        assert_eq!(avg.aggregate(&inputs).unwrap().data(), &[3.0, 4.0]);
    }

    #[test]
    fn rejects_zero_inputs_and_wrong_counts() {
        assert!(Average::new(0).is_err());
        let avg = Average::new(2).unwrap();
        assert!(avg.aggregate(&[]).is_err());
        assert!(avg.aggregate(&[Tensor::from_slice(&[1.0])]).is_err());
    }

    #[test]
    fn rejects_heterogeneous_shapes() {
        let avg = Average::new(2).unwrap();
        let inputs = vec![Tensor::from_slice(&[1.0]), Tensor::from_slice(&[1.0, 2.0])];
        assert_eq!(
            avg.aggregate(&inputs).unwrap_err(),
            AggregationError::HeterogeneousShapes
        );
    }

    #[test]
    fn a_single_outlier_corrupts_the_average() {
        // Documents *why* the paper replaces averaging: one Byzantine input
        // shifts the output arbitrarily far from the honest values.
        let avg = Average::new(3).unwrap();
        let inputs = vec![
            Tensor::from_slice(&[1.0]),
            Tensor::from_slice(&[1.0]),
            Tensor::from_slice(&[1.0e9]),
        ];
        let out = avg.aggregate(&inputs).unwrap();
        assert!(out.data()[0] > 1.0e8);
    }
}
