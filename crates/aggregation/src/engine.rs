//! The parallel, zero-copy aggregation engine.
//!
//! Garfield's evaluation shows the GAR is the dominant server-side cost:
//! Multi-Krum and Bulyan are `O(n² d)` in pairwise distances, and the old
//! implementations re-derived those distances from freshly cloned [`Tensor`]s
//! on every call (Bulyan even re-ran Krum from scratch per selection round).
//! This module removes both costs:
//!
//! * **Zero-copy inputs** — GARs consume [`GradientView`]s, borrowed `&[f32]`
//!   slices over wire payloads or tensor storage. Only the final output is
//!   copied.
//! * **One shared [`DistanceCache`]** — the n×n squared-distance matrix is
//!   computed once, chunked across OS threads (vendored crossbeam scoped
//!   threads), and reused across Krum scoring and the whole Bulyan selection
//!   loop, whose repeated-Krum inner loop becomes incremental score updates
//!   on pre-sorted neighbour lists.
//! * **Deterministic parallelism** — every parallel fill computes element `k`
//!   with exactly the scalar code the sequential path runs, each element on
//!   one thread, so parallel and sequential engines are **bit-identical** by
//!   construction (enforced by the engine-equivalence proptests and the
//!   `expfig perf` harness).

use crossbeam::thread as cb_thread;
use garfield_tensor::{
    accumulate_dot, accumulate_squared_l2, reduce_kernel_lanes, total_cmp_f32 as cmp_f32,
    GradientView, KERNEL_LANES,
};
use std::cmp::Ordering;
use std::sync::OnceLock;

/// Minimum scalar operations every *spawned* thread must carry before a
/// parallel engine fans out. A thread spawn + scope join costs tens of
/// microseconds; `2^18` multiply-adds is on the order of 100 µs of work, so a
/// chunk below this floor would spend more time being scheduled than
/// computing. The old heuristic compared `items × work` against a flat
/// `2^15` *total* and then split across every core — at d = 10⁴ that spawned
/// threads carrying ~20 µs of work each, which is exactly why the parallel
/// engine measured *slower* than sequential (median 0.65×, multi-krum 0.82×)
/// at small d. Fan-out is now derived from work-per-thread, so `Engine::auto`
/// degrades to the sequential path instead of losing to it.
const PAR_WORK_PER_THREAD: usize = 1 << 18;

/// Execution policy of the aggregation engine: how many OS threads to chunk
/// data-parallel fills across, and whether the distance fill may use the
/// approximate fast-math (Gram) kernel.
///
/// `Engine::sequential()` is the retained single-threaded reference path;
/// `Engine::auto()` matches the machine's parallelism. Both produce
/// bit-identical outputs — parallelism changes *where* each element is
/// computed, never *how*. The thread count is clamped to at least 1 in
/// exactly one place ([`Engine::with_threads`], which every constructor
/// funnels through); the rest of the engine trusts the `threads ≥ 1`
/// invariant.
///
/// # Fast-math mode
///
/// [`Engine::fast_math`] opts in to the Gram-trick distance fill:
/// `‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b` with per-input cached norms, computed as
/// a matmul-shaped pass over cache-sized `d`-blocks. It is off by default
/// because it changes the *values* of distances within floating-point
/// rounding (see [`gram_error_bound`]) — close Krum/MDA scores can therefore
/// resolve to a different (equally honest-by-the-bound) selection rank than
/// the exact kernel. The mode remains deterministic and bit-identical
/// between sequential and parallel engines, and it falls back to the exact
/// kernel whenever any input or cached norm is non-finite, so NaN/±inf
/// Byzantine payloads cannot exploit the identity. See the README
/// "Performance" section for the full robustness contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
    fast_math: bool,
}

impl Engine {
    /// The single-threaded reference engine.
    pub fn sequential() -> Self {
        Engine::with_threads(1)
    }

    /// An engine sized to the machine (`std::thread::available_parallelism`).
    pub fn auto() -> Self {
        static CORES: OnceLock<usize> = OnceLock::new();
        let threads = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        Engine::with_threads(threads)
    }

    /// An engine with an explicit thread count.
    ///
    /// This is the single clamping point of the engine: a requested count of
    /// 0 is clamped to 1 here, and nowhere else re-clamps.
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
            fast_math: false,
        }
    }

    /// Returns this engine with fast-math distance fills switched on or off
    /// (builder style: `Engine::auto().fast_math(true)`).
    ///
    /// See the type-level docs for the accuracy/robustness contract.
    pub fn fast_math(mut self, enabled: bool) -> Self {
        self.fast_math = enabled;
        self
    }

    /// Whether the distance fill may use the approximate Gram kernel.
    pub fn is_fast_math(&self) -> bool {
        self.fast_math
    }

    /// Number of threads fills are chunked across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this engine ever spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Fan-out for a fill of `items` elements costing `work_per_item` scalar
    /// operations each: as many threads as the machine allows, capped so
    /// every thread's chunk carries at least [`PAR_WORK_PER_THREAD`]
    /// operations (otherwise the spawn dominates and one thread is faster).
    fn threads_for(&self, items: usize, work_per_item: usize) -> usize {
        let total = items.saturating_mul(work_per_item.max(1));
        let affordable = self.threads.min(items).min(total / PAR_WORK_PER_THREAD);
        if affordable < 2 {
            1
        } else {
            affordable
        }
    }

    /// Fills `out` in contiguous chunks: `fill(base, chunk)` must write
    /// `chunk[k]` as a pure function of the absolute index `base + k`.
    ///
    /// The chunk closure runs once per chunk (so it may allocate per-chunk
    /// scratch); with one thread — or when `items × work_per_item` is too
    /// small to amortise a spawn — everything runs on the calling thread.
    pub(crate) fn fill_chunks<T, F>(&self, out: &mut [T], work_per_item: usize, fill: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if out.is_empty() {
            return;
        }
        let threads = self.threads_for(out.len(), work_per_item);
        if threads <= 1 {
            fill(0, out);
            return;
        }
        let chunk = out.len().div_ceil(threads);
        cb_thread::scope(|s| {
            // The calling thread takes the last chunk itself instead of
            // idling in the scope join: exactly `threads` runnable threads,
            // one fewer spawn per fill.
            let mut chunks: Vec<(usize, &mut [T])> = out.chunks_mut(chunk).enumerate().collect();
            let local = chunks.pop();
            for (c, slice) in chunks {
                let fill = &fill;
                s.spawn(move || fill(c * chunk, slice));
            }
            if let Some((c, slice)) = local {
                fill(c * chunk, slice);
            }
        });
    }

    /// Element-wise parallel fill: `out[k] = f(k)`.
    pub(crate) fn fill<T, F>(&self, out: &mut [T], work_per_item: usize, f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.fill_chunks(out, work_per_item, |base, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = f(base + k);
            }
        });
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::auto()
    }
}

/// Bytes of gradient data a blocked distance fill tries to keep resident
/// per block sweep (all `n` inputs' current `d`-block together). 256 KiB
/// sits inside a typical per-core L2, so every input block is read from
/// memory once and then hit `n − 1` times from cache instead of being
/// re-streamed from DRAM for every pair — the unblocked fill moves
/// `n(n−1)·d` floats of traffic, the blocked one `n·d` per thread.
const DISTANCE_BLOCK_BUDGET_BYTES: usize = 1 << 18;

/// Coordinates per transpose tile in the coordinate-wise kernels
/// (Median, Bulyan phase 2). Gathering one coordinate straight from `n`
/// multi-megabyte gradients is `n` concurrent strided streams — more than
/// the hardware prefetchers track — so the kernels first copy each input's
/// tile segment sequentially into an L2-resident `n × COLUMN_TILE` scratch
/// and then read per-coordinate columns contiguously. 256 coordinates keeps
/// the tile at `n · 1 KiB` (51 inputs → 51 KiB), well inside L2.
pub(crate) const COLUMN_TILE: usize = 256;

/// Block length (in elements) for a blocked pairwise fill over `n` inputs:
/// a multiple of [`KERNEL_LANES`] (required for bit-identical blocking),
/// sized so all `n` input blocks fit the cache budget together.
fn distance_block_len(n: usize) -> usize {
    let per_input = DISTANCE_BLOCK_BUDGET_BYTES / (4 * n.max(1));
    (per_input / KERNEL_LANES * KERNEL_LANES).clamp(KERNEL_LANES, 8192)
}

/// Fills `out[p] = ‖inputs[i_p] − inputs[j_p]‖²` (exact chunked kernel) for a
/// slice of pairs, blocked over cache-sized `d`-ranges.
///
/// Per-pair lane accumulators persist across blocks and every block boundary
/// is [`KERNEL_LANES`]-aligned, so the result is bit-identical to calling
/// [`squared_l2_distance_slices`] on each whole pair — the blocking only
/// changes memory traffic, never the accumulation order.
fn fill_pair_distances_exact(inputs: &[GradientView<'_>], pairs: &[(u32, u32)], out: &mut [f32]) {
    let d = inputs.first().map(|v| v.len()).unwrap_or(0);
    let block = distance_block_len(inputs.len());
    let mut acc = vec![[0.0f32; KERNEL_LANES]; pairs.len()];
    let mut start = 0;
    while start < d {
        let end = (start + block).min(d);
        for (&(i, j), lanes) in pairs.iter().zip(acc.iter_mut()) {
            accumulate_squared_l2(
                &inputs[i as usize].data()[start..end],
                &inputs[j as usize].data()[start..end],
                lanes,
            );
        }
        start = end;
    }
    for (slot, lanes) in out.iter_mut().zip(acc) {
        *slot = reduce_kernel_lanes(lanes);
    }
}

/// Squared L2 norm of a slice, accumulated block-by-block: `f32` kernel lanes
/// within each cache block, an `f64` running total across blocks.
///
/// The Gram identity `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b` subtracts three large
/// numbers to produce a potentially tiny one, so at d = 10⁶ a pure-`f32` sum's
/// rounding error (`~(d/LANES)·ε·‖a‖²`) can exceed the distance itself.
/// Promoting the *cross-block* accumulation to `f64` caps the `f32` error at
/// one block's worth (`~(block/LANES)·ε`, see [`gram_error_bound`]) while
/// keeping the hot inner loop in `f32` SIMD lanes.
///
/// The result is also the Gram-eligibility probe: it is finite iff every
/// element is finite (squares are non-negative, so NaN/±inf propagate and
/// never cancel) *and* no per-block `f32` lane sum overflowed.
fn squared_norm_blocked_f64(a: &[f32], block: usize) -> f64 {
    let mut total = 0.0f64;
    let mut start = 0;
    while start < a.len() {
        let end = (start + block).min(a.len());
        let mut lanes = [0.0f32; KERNEL_LANES];
        accumulate_dot(&a[start..end], &a[start..end], &mut lanes);
        total += f64::from(reduce_kernel_lanes(lanes));
        start = end;
    }
    total
}

/// Fills `out[p] = max(0, ‖i_p‖² + ‖j_p‖² − 2·(i_p · j_p))` — the Gram-trick
/// distance — for a slice of pairs, blocked over cache-sized `d`-ranges.
///
/// Dot products use the same `f32`-lanes-per-block / `f64`-across-blocks
/// scheme as [`squared_norm_blocked_f64`], and the three-term combination runs
/// entirely in `f64`, so the cancellation of the Gram identity happens at
/// `f64` precision and only per-block `f32` lane rounding survives into the
/// result (bounded by [`gram_error_bound`]). The clamp at 0 absorbs the tiny
/// negative values that residual rounding can produce for near-identical
/// inputs. Only called on inputs whose cached `norms` are all finite.
fn fill_pair_distances_gram(
    inputs: &[GradientView<'_>],
    norms: &[f64],
    pairs: &[(u32, u32)],
    out: &mut [f32],
) {
    let d = inputs.first().map(|v| v.len()).unwrap_or(0);
    let block = distance_block_len(inputs.len());
    let mut acc = vec![0.0f64; pairs.len()];
    let mut start = 0;
    while start < d {
        let end = (start + block).min(d);
        for (&(i, j), dot) in pairs.iter().zip(acc.iter_mut()) {
            let mut lanes = [0.0f32; KERNEL_LANES];
            accumulate_dot(
                &inputs[i as usize].data()[start..end],
                &inputs[j as usize].data()[start..end],
                &mut lanes,
            );
            *dot += f64::from(reduce_kernel_lanes(lanes));
        }
        start = end;
    }
    for ((slot, dot), &(i, j)) in out.iter_mut().zip(acc).zip(pairs) {
        let dist = norms[i as usize] + norms[j as usize] - 2.0 * dot;
        *slot = (dist as f32).max(0.0);
    }
}

/// Worst-case absolute error of the Gram-trick distance versus the exact
/// chunked kernel, for finite inputs with squared norms `na2` and `nb2` over
/// dimension `d`, in a cache built over `n` inputs.
///
/// The Gram fill accumulates in `f32` lanes only *within* one cache block and
/// in `f64` across blocks, and combines `‖a‖² + ‖b‖² − 2a·b` in `f64`, so the
/// surviving error is per-block `f32` lane rounding: each block of length `L ≤
/// min(block_len(n), d)` contributes at most `(L/KERNEL_LANES + lg
/// KERNEL_LANES) · ε · Σ|block terms|` to each of the three sums, and summing
/// over blocks keeps the same factor against the *total* `Σ|terms|` — which is
/// `na2`, `nb2`, and (by AM–GM) at most `(na2 + nb2)/2` for the dot. The
/// `f64`-side error and the final rounding to `f32` add a few ulps of `na2 +
/// nb2`; the exact kernel's own `f32` rounding contributes the same order
/// again. The bound below folds all of it with a 4× safety factor —
/// proptested in `tests/kernel_properties.rs` and `engine_equivalence.rs`.
pub fn gram_error_bound(n: usize, d: usize, na2: f32, nb2: f32) -> f32 {
    let block = distance_block_len(n).min(d.max(1));
    let terms = (block as f32) / (KERNEL_LANES as f32) + 8.0;
    4.0 * terms * f32::EPSILON * (na2 + nb2)
}

/// The n×n squared-distance matrix of a set of gradient views, computed once
/// and shared across every distance-based GAR decision.
///
/// Building the cache is the `O(n² d)` hot spot of Krum, Multi-Krum, MDA and
/// Bulyan; the engine chunks the `n(n-1)/2` unique pairs across threads, and
/// each thread fills its pairs *blocked* over cache-sized `d`-ranges with
/// the chunked multi-lane kernel, so every input block is read from memory
/// once per thread instead of once per pair. Each pair is computed entirely
/// on one thread with a fixed accumulation order — bit-identical to the
/// sequential engine by construction.
///
/// Under a fast-math engine ([`Engine::fast_math`]) the fill switches to the
/// Gram identity with cached per-input norms (≈⅓ fewer flops and one shared
/// norm pass), unless any input value or norm is non-finite, in which case
/// it falls back to the exact kernel (Byzantine NaN/±inf payloads must hit
/// the exact path).
#[derive(Debug, Clone)]
pub struct DistanceCache {
    n: usize,
    dist: Vec<f32>,
    finite: bool,
    gram: bool,
}

/// Cached `garfield-obs` handles for the fill instrumentation: one registry
/// lookup per process, relaxed-atomic bumps per fill, a load and a branch
/// when observability is disabled.
struct FillObs {
    fill_seconds: garfield_obs::Histogram,
    gelem_s: garfield_obs::Gauge,
    fallbacks: garfield_obs::Counter,
}

fn fill_obs() -> &'static FillObs {
    static OBS: std::sync::OnceLock<FillObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| FillObs {
        fill_seconds: garfield_obs::metrics::histogram(
            "garfield_distance_fill_seconds",
            "Wall time of one DistanceCache pairwise fill.",
            &[],
        ),
        gelem_s: garfield_obs::metrics::gauge(
            "garfield_kernel_gelem_s",
            "Distance-kernel throughput of the most recent fill, in Gelem/s \
             (pair elements per second / 1e9).",
            &[],
        ),
        fallbacks: garfield_obs::metrics::counter(
            "garfield_fastmath_fallback_total",
            "Fast-math fills that fell back to the exact kernels because an \
             input or norm was non-finite.",
            &[],
        ),
    })
}

impl DistanceCache {
    /// Computes all pairwise squared distances of `inputs` under `engine`.
    pub fn build(inputs: &[GradientView<'_>], engine: &Engine) -> Self {
        let obs = fill_obs();
        let span = garfield_obs::span_start();
        let n = inputs.len();
        let d = inputs.first().map(|v| v.len()).unwrap_or(0);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i as u32, j as u32));
            }
        }

        // Fast-math eligibility: the cached norm pass doubles as the probe.
        // A blocked-`f64` squared norm is finite iff every input element is
        // finite (squares are non-negative, so NaN/±inf propagate and never
        // cancel) and no per-block `f32` lane sum overflowed — exactly the
        // inputs the Gram identity handles safely. Anything else (Byzantine
        // NaN/±inf payloads, overflow-scaled gradients) falls back to the
        // exact kernel, at the cost of one wasted `O(n d)` norm pass.
        let mut norms = Vec::new();
        let mut use_gram = false;
        if engine.is_fast_math() && n > 0 {
            let block = distance_block_len(n);
            norms = vec![0.0f64; n];
            engine.fill(&mut norms, d, |i| {
                squared_norm_blocked_f64(inputs[i].data(), block)
            });
            use_gram = norms.iter().all(|v| v.is_finite());
        }

        let mut vals = vec![0.0f32; pairs.len()];
        // Each pair costs ~2d scalar ops; the closure fills a contiguous
        // chunk of pairs with the blocked kernel.
        engine.fill_chunks(&mut vals, 2 * d, |base, chunk| {
            let chunk_pairs = &pairs[base..base + chunk.len()];
            if use_gram {
                fill_pair_distances_gram(inputs, &norms, chunk_pairs, chunk);
            } else {
                fill_pair_distances_exact(inputs, chunk_pairs, chunk);
            }
        });

        let mut dist = vec![0.0f32; n * n];
        for (&(i, j), &v) in pairs.iter().zip(vals.iter()) {
            dist[i as usize * n + j as usize] = v;
            dist[j as usize * n + i as usize] = v;
        }
        let finite = vals.iter().all(|v| v.is_finite());

        if engine.is_fast_math() && n > 0 && !use_gram {
            obs.fallbacks.inc();
            garfield_obs::flight::record(
                garfield_obs::flight::EventKind::FastMathFallback,
                0,
                None,
                n as f64,
            );
        }
        if let Some(elapsed) = garfield_obs::span_end(span, &obs.fill_seconds) {
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                let pair_elems = pairs.len() as f64 * d as f64;
                obs.gelem_s.set(pair_elems / secs / 1.0e9);
            }
        }

        DistanceCache {
            n,
            dist,
            finite,
            gram: use_gram,
        }
    }

    /// Number of cached inputs.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether this cache was filled with the approximate Gram kernel
    /// (`false` under a default engine, and under a fast-math engine whose
    /// inputs forced the exact fallback).
    pub fn used_gram(&self) -> bool {
        self.gram
    }

    /// The cached squared distance between inputs `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.dist[i * self.n + j]
    }

    /// Whether every cached distance is finite (NaN inputs poison distances;
    /// the incremental Bulyan path requires a totally ordered matrix and
    /// falls back to per-round rescoring otherwise).
    pub fn is_finite(&self) -> bool {
        self.finite
    }
}

/// Reusable scratch buffers for cache-based selection.
///
/// All selection entry points write into these pre-sized buffers and sort
/// in place with `sort_unstable`, so steady-state selection (after the first
/// warm-up call) performs **zero heap allocations** — asserted by the
/// counting-allocator regression test.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    row: Vec<f32>,
    scores: Vec<f32>,
    order: Vec<usize>,
    remaining: Vec<usize>,
    /// Flattened per-candidate sorted neighbour-distance lists (stride n−1),
    /// used by the incremental Bulyan selection loop.
    neighbours: Vec<f32>,
    neighbour_len: Vec<usize>,
}

impl SelectionScratch {
    /// Creates empty scratch; buffers grow to fit on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        SelectionScratch::default()
    }

    /// The scores the last scoring pass produced, indexed by candidate.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// The index order the last selection pass produced (best first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

/// Computes every candidate's Krum score — the sum of its squared distances
/// to its `n − f − 2` closest neighbours — from the cache into
/// `scratch.scores`.
pub(crate) fn krum_scores_cached(cache: &DistanceCache, f: usize, scratch: &mut SelectionScratch) {
    let n = cache.n();
    let neighbours = n.saturating_sub(f + 2).max(1);
    scratch.scores.clear();
    scratch.scores.reserve(n);
    for i in 0..n {
        scratch.row.clear();
        scratch.row.reserve(n.saturating_sub(1));
        for j in 0..n {
            if j != i {
                scratch.row.push(cache.get(i, j));
            }
        }
        scratch.row.sort_unstable_by(cmp_f32);
        scratch
            .scores
            .push(scratch.row.iter().take(neighbours).sum());
    }
}

/// Writes the indices of the `m` smallest scores into `scratch.order`
/// (ascending score, ties broken by index — the stable-sort order the
/// original implementation produced).
pub(crate) fn smallest_scores_cached(m: usize, scratch: &mut SelectionScratch) {
    scratch.order.clear();
    scratch.order.extend(0..scratch.scores.len());
    let scores = &scratch.scores;
    scratch
        .order
        .sort_unstable_by(|&a, &b| cmp_f32(&scores[a], &scores[b]).then(a.cmp(&b)));
    scratch.order.truncate(m);
}

/// Cache-based Krum selection: the single smallest-scoring index.
pub(crate) fn krum_best_cached(
    cache: &DistanceCache,
    f: usize,
    scratch: &mut SelectionScratch,
) -> usize {
    krum_scores_cached(cache, f, scratch);
    smallest_scores_cached(1, scratch);
    scratch.order[0]
}

/// The selected indices (ascending score order) of Multi-Krum, left in
/// `scratch.order`.
pub(crate) fn multi_krum_cached(
    cache: &DistanceCache,
    f: usize,
    m: usize,
    scratch: &mut SelectionScratch,
) {
    krum_scores_cached(cache, f, scratch);
    smallest_scores_cached(m, scratch);
}

/// Bulyan's selection phase over the shared cache: iterate Krum `k` times,
/// moving the winner out of the candidate pool each round.
///
/// On a finite cache the repeated-Krum inner loop is *incremental*: each
/// candidate's neighbour distances are sorted once, the selected candidate's
/// distance is deleted from every survivor's sorted list in `O(n)`, and each
/// round's score is a prefix sum — `O(n² log n)` once plus `O(n²)` per round,
/// with no dependence on the gradient dimension `d`. Non-finite distances
/// (NaN payloads) break total ordering, so those fall back to per-round
/// rescoring from the cache, which is what the old clone-the-pool code
/// computed — still without touching `d` again.
pub(crate) fn bulyan_select_cached(
    cache: &DistanceCache,
    f: usize,
    k: usize,
    scratch: &mut SelectionScratch,
    selected: &mut Vec<usize>,
) {
    let n = cache.n();
    selected.clear();
    scratch.remaining.clear();
    scratch.remaining.extend(0..n);
    let incremental = cache.is_finite();
    let stride = n.saturating_sub(1);
    if incremental {
        scratch.neighbours.clear();
        scratch.neighbours.resize(n * stride, 0.0);
        scratch.neighbour_len.clear();
        scratch.neighbour_len.resize(n, stride);
        for i in 0..n {
            let list = &mut scratch.neighbours[i * stride..(i + 1) * stride];
            let mut w = 0;
            for j in 0..n {
                if j != i {
                    list[w] = cache.get(i, j);
                    w += 1;
                }
            }
            list.sort_unstable_by(cmp_f32);
        }
    }
    for _ in 0..k {
        let m = scratch.remaining.len();
        if m <= 1 {
            selected.append(&mut scratch.remaining);
            break;
        }
        // Krum parameters over the current pool, matching the original
        // shrink-the-pool semantics: f is capped so the neighbour count
        // stays valid as the pool shrinks.
        let f_eff = f.min(m.saturating_sub(3));
        let nb = m.saturating_sub(f_eff + 2).max(1);

        // Score every remaining candidate.
        let mut best_pos = 0usize;
        let mut best_score = f32::INFINITY;
        let mut have_best = false;
        for (pos, &i) in scratch.remaining.iter().enumerate() {
            let score: f32 = if incremental {
                let len = scratch.neighbour_len[i];
                scratch.neighbours[i * stride..i * stride + len]
                    .iter()
                    .take(nb)
                    .sum()
            } else {
                scratch.row.clear();
                scratch.row.reserve(m.saturating_sub(1));
                for &j in &scratch.remaining {
                    if j != i {
                        scratch.row.push(cache.get(i, j));
                    }
                }
                scratch.row.sort_unstable_by(cmp_f32);
                scratch.row.iter().take(nb).sum()
            };
            // First index wins ties, exactly like the stable argmin of the
            // original smallest-scores path.
            if !have_best || cmp_f32(&score, &best_score) == Ordering::Less {
                best_pos = pos;
                best_score = score;
                have_best = true;
            }
        }
        let winner = scratch.remaining.remove(best_pos);
        selected.push(winner);

        if incremental {
            // Delete the winner's distance from every survivor's sorted
            // list: binary search to its first occurrence, shift left.
            // Duplicate distances are interchangeable (equal values), so
            // removing the first occurrence preserves every prefix sum.
            for &i in &scratch.remaining {
                let len = scratch.neighbour_len[i];
                let list = &mut scratch.neighbours[i * stride..i * stride + len];
                let v = cache.get(i, winner);
                let pos = list.partition_point(|x| cmp_f32(x, &v) == Ordering::Less);
                debug_assert!(pos < len && list[pos].to_bits() == v.to_bits());
                list.copy_within(pos + 1.., pos);
                scratch.neighbour_len[i] = len - 1;
            }
        }
    }
}

/// Averages the views at `indices` into `out` (sum accumulated from 0.0 in
/// `indices` order per coordinate, then scaled — the accumulation order of
/// the original tensor loop, chunked across threads by coordinate range).
pub(crate) fn average_indices_into(
    inputs: &[GradientView<'_>],
    indices: &[usize],
    engine: &Engine,
    out: &mut Vec<f32>,
) {
    let d = inputs.first().map(|v| v.len()).unwrap_or(0);
    out.clear();
    out.resize(d, 0.0);
    let inv = 1.0 / indices.len().max(1) as f32;
    engine.fill_chunks(out, indices.len(), |base, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            let c = base + k;
            let mut sum = 0.0f32;
            for &i in indices {
                sum += inputs[i].data()[c];
            }
            *slot = sum * inv;
        }
    });
}

/// Averages all views (the plain-averaging GAR and the variance probe's
/// empirical-mean step share this kernel).
pub fn average_views(inputs: &[GradientView<'_>], engine: &Engine) -> Vec<f32> {
    let indices: Vec<usize> = (0..inputs.len()).collect();
    let mut out = Vec::new();
    average_indices_into(inputs, &indices, engine, &mut out);
    out
}

/// Coordinates per tile of the fused average-plus-norms sweep: a multiple of
/// [`KERNEL_LANES`], sized so one input's tile segment (64 KiB) plus the
/// average accumulator tile stay cache-resident while all `n` inputs stream
/// through it once.
const NORM_TILE: usize = 1 << 14;

/// Everything the speculative fast path needs from one sweep over the
/// gradient data: the plain average, every input's squared L2 norm, and a
/// compact gather of a strided coordinate sample.
pub struct FusedSweep {
    /// The coordinate-wise average — bit-identical to [`average_views`].
    pub average: Vec<f32>,
    /// Per-input squared L2 norms (fixed-tile blocked evaluation, `f64`
    /// cross-tile totals) — engine-independent bit for bit.
    pub square_norms: Vec<f64>,
    /// The sampled coordinates `j = 0, stride, 2·stride, …`, gathered
    /// row-by-row: `samples[k * n + i]` is input `i` at the `k`-th sampled
    /// coordinate. Empty when the sweep was built with `sample_stride = 0`.
    pub samples: Vec<f32>,
}

impl FusedSweep {
    /// Number of sampled coordinates per input.
    pub fn sample_count(&self, n: usize) -> usize {
        self.samples.len().checked_div(n).unwrap_or(0)
    }
}

/// Fused single-pass kernel for the speculative fast path: the plain average
/// of all views, every input's squared L2 norm, and (when `sample_stride >
/// 0`) a strided coordinate sample, in one sweep over the gradient data.
///
/// At large `d` all three outputs are memory-bound, so computing them in
/// separate passes multiplies the DRAM traffic for no extra information —
/// and a strided sample gathered *after* the sweep pays a cold cache miss
/// per coordinate per input. This kernel walks fixed [`NORM_TILE`]-
/// coordinate tiles; per tile each input's segment is read once, folded
/// into the average accumulator, into a 16-lane norm partial
/// ([`accumulate_dot`]'s lane structure exactly), and its sampled
/// coordinates are copied out while the segment is cache-hot.
///
/// Determinism contracts, all independent of the engine's thread count:
///
/// * the average is **bit-identical** to [`average_views`]: each coordinate
///   is the `f32` sum over inputs in ascending index order, scaled once —
///   tiling changes which thread computes a coordinate, never how;
/// * the norms are the fixed-tile blocked evaluation (per-tile `f32` kernel
///   lanes, tiles summed in ascending order as `f64`) — the tile grid is a
///   constant, and every tile is computed whole by one thread, so a
///   consistency check built on these norms makes the same decision on
///   sequential and parallel engines;
/// * the samples are exact copies of the input values, so any check over
///   them is trivially engine-independent.
pub fn fused_average_sweep(
    inputs: &[GradientView<'_>],
    engine: &Engine,
    sample_stride: usize,
) -> FusedSweep {
    let n = inputs.len();
    let d = inputs.first().map(|v| v.len()).unwrap_or(0);
    let mut out = vec![0.0f32; d];
    let mut norms = vec![0.0f64; n];
    if d == 0 || n == 0 {
        return FusedSweep {
            average: out,
            square_norms: norms,
            samples: Vec::new(),
        };
    }
    let tiles = d.div_ceil(NORM_TILE);
    let mut partials = vec![0.0f64; tiles * n];
    let sample_count = if sample_stride == 0 {
        0
    } else {
        d.div_ceil(sample_stride)
    };
    let mut samples = vec![0.0f32; sample_count * n];
    {
        // Each tile owns a disjoint block of the sample buffer: the rows of
        // the sampled coordinates that fall inside it.
        let mut blocks: Vec<&mut [f32]> = Vec::with_capacity(tiles);
        let mut rest: &mut [f32] = &mut samples;
        for t in 0..tiles {
            let start = t * NORM_TILE;
            let end = (start + NORM_TILE).min(d);
            let rows = if sample_stride == 0 {
                0
            } else {
                end.div_ceil(sample_stride) - start.div_ceil(sample_stride)
            };
            let (block, tail) = rest.split_at_mut(rows * n);
            blocks.push(block);
            rest = tail;
        }
        // (tile index, average accumulator, norm partials row, sample block).
        type TileWork<'a> = (usize, &'a mut [f32], &'a mut [f64], &'a mut [f32]);
        let mut work: Vec<TileWork<'_>> = out
            .chunks_mut(NORM_TILE)
            .zip(partials.chunks_mut(n))
            .zip(blocks)
            .enumerate()
            .map(|(t, ((acc, row), block))| (t, acc, row, block))
            .collect();
        let inv = 1.0 / n as f32;
        engine.fill_chunks(&mut work, NORM_TILE * n * 3, |_, items| {
            for (t, acc, row, block) in items.iter_mut() {
                let start = *t * NORM_TILE;
                for (i, v) in inputs.iter().enumerate() {
                    let data = &v.data()[start..start + acc.len()];
                    let mut lanes = [0.0f32; KERNEL_LANES];
                    accumulate_sum_and_squares(acc, data, &mut lanes);
                    row[i] = f64::from(reduce_kernel_lanes(lanes));
                    if sample_stride > 0 {
                        // Gather this input's sampled coordinates while its
                        // segment is still cache-hot.
                        let mut j = start.div_ceil(sample_stride) * sample_stride;
                        let mut k = 0usize;
                        while j < start + acc.len() {
                            block[k * n + i] = data[j - start];
                            k += 1;
                            j += sample_stride;
                        }
                    }
                }
                for slot in acc.iter_mut() {
                    *slot *= inv;
                }
            }
        });
    }
    // Cross-tile reduction in fixed ascending tile order, in `f64`.
    for row in partials.chunks(n) {
        for (total, &partial) in norms.iter_mut().zip(row.iter()) {
            *total += partial;
        }
    }
    FusedSweep {
        average: out,
        square_norms: norms,
        samples,
    }
}

/// The fused sweep without the sample gather: the plain average of all views
/// and every input's squared L2 norm in one pass. See [`fused_average_sweep`]
/// for the determinism contracts.
pub fn average_and_square_norms(
    inputs: &[GradientView<'_>],
    engine: &Engine,
) -> (Vec<f32>, Vec<f64>) {
    let sweep = fused_average_sweep(inputs, engine, 0);
    (sweep.average, sweep.square_norms)
}

/// Folds one tile of one input into the average accumulator and a norm lane
/// array: `acc[k] += x[k]` and `lanes[k % KERNEL_LANES] += x[k]²` for
/// ascending `k` — the norm side is bit-identical to
/// [`accumulate_dot`]`(x, x, lanes)`, fused with the sum so the tile is read
/// once.
#[inline]
fn accumulate_sum_and_squares(acc: &mut [f32], data: &[f32], lanes: &mut [f32; KERNEL_LANES]) {
    let mut ca = acc.chunks_exact_mut(KERNEL_LANES);
    let mut cx = data.chunks_exact(KERNEL_LANES);
    for (a, x) in ca.by_ref().zip(cx.by_ref()) {
        let a: &mut [f32; KERNEL_LANES] = a.try_into().expect("chunks_exact length");
        let x: &[f32; KERNEL_LANES] = x.try_into().expect("chunks_exact length");
        for l in 0..KERNEL_LANES {
            a[l] += x[l];
            lanes[l] += x[l] * x[l];
        }
    }
    for (l, (a, &x)) in ca
        .into_remainder()
        .iter_mut()
        .zip(cx.remainder())
        .enumerate()
    {
        *a += x;
        lanes[l] += x * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::{squared_l2_distance_slices, squared_norm_slices, Tensor};

    fn views(data: &[Vec<f32>]) -> Vec<GradientView<'_>> {
        data.iter().map(GradientView::from).collect()
    }

    #[test]
    fn engines_report_their_shape() {
        assert_eq!(Engine::sequential().threads(), 1);
        assert!(!Engine::sequential().is_parallel());
        assert_eq!(Engine::with_threads(0).threads(), 1);
        assert_eq!(Engine::with_threads(4).threads(), 4);
        assert!(Engine::auto().threads() >= 1);
        assert_eq!(Engine::default().threads(), Engine::auto().threads());
        assert!(!Engine::auto().is_fast_math());
        assert!(Engine::auto().fast_math(true).is_fast_math());
        assert!(!Engine::auto()
            .fast_math(true)
            .fast_math(false)
            .is_fast_math());
        // Fast-math engines keep their thread shape.
        assert_eq!(Engine::with_threads(4).fast_math(true).threads(), 4);
    }

    #[test]
    fn fan_out_requires_enough_work_per_thread() {
        let e = Engine::with_threads(8);
        // Median-shaped fill at d = 10⁴ (10 000 coordinates × n = 15 scalar
        // ops): far below a single thread's worth of work — stay sequential.
        assert_eq!(e.threads_for(10_000, 15), 1);
        // Distance fill at d = 10⁶ (105 pairs × 2·10⁶ ops): full fan-out.
        assert_eq!(e.threads_for(105, 2_000_000), 8);
        // Fan-out is capped by affordable work per thread, not just items.
        assert_eq!(e.threads_for(3 * PAR_WORK_PER_THREAD, 1), 3);
        assert_eq!(e.threads_for(PAR_WORK_PER_THREAD, 1), 1);
        // A sequential engine never fans out regardless of work.
        assert_eq!(Engine::sequential().threads_for(1 << 30, 1024), 1);
    }

    #[test]
    fn parallel_fill_matches_sequential_fill() {
        let mut seq = vec![0.0f32; 10_000];
        let mut par = vec![0.0f32; 10_000];
        Engine::sequential().fill(&mut seq, 64, |k| (k as f32).sin());
        Engine::with_threads(4).fill(&mut par, 64, |k| (k as f32).sin());
        assert_eq!(seq, par);
    }

    #[test]
    fn small_work_stays_on_the_calling_thread() {
        // 8 items × 1 op is far below the spawn threshold; this must not
        // deadlock or misindex when the engine short-circuits.
        let mut out = vec![0usize; 8];
        Engine::with_threads(8).fill(&mut out, 1, |k| k * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        Engine::with_threads(8).fill(&mut [] as &mut [usize], 1, |k| k);
    }

    #[test]
    fn distance_cache_matches_direct_distances() {
        let data: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..16).map(|c| (i * 16 + c) as f32 * 0.25).collect())
            .collect();
        let v = views(&data);
        let cache = DistanceCache::build(&v, &Engine::sequential());
        assert_eq!(cache.n(), 5);
        assert!(cache.is_finite());
        for i in 0..5 {
            assert_eq!(cache.get(i, i), 0.0);
            for j in 0..5 {
                let a = Tensor::from_slice(&data[i]);
                let b = Tensor::from_slice(&data[j]);
                assert_eq!(
                    cache.get(i, j),
                    garfield_tensor::squared_l2_distance(&a, &b)
                );
                assert_eq!(cache.get(i, j), cache.get(j, i));
            }
        }
    }

    #[test]
    fn parallel_cache_is_bit_identical_to_sequential() {
        let data: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                (0..4096)
                    .map(|c| ((i * 31 + c) as f32 * 0.1).sin())
                    .collect()
            })
            .collect();
        let v = views(&data);
        let seq = DistanceCache::build(&v, &Engine::sequential());
        let par = DistanceCache::build(&v, &Engine::with_threads(4));
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(seq.get(i, j).to_bits(), par.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn nan_payloads_mark_the_cache_non_finite() {
        let data = vec![vec![0.0f32, f32::NAN], vec![1.0, 2.0], vec![3.0, 4.0]];
        let cache = DistanceCache::build(&views(&data), &Engine::sequential());
        assert!(!cache.is_finite());
    }

    #[test]
    fn blocked_fill_is_bit_identical_to_whole_pair_kernel() {
        // d spans many cache blocks plus a ragged tail, so the fill crosses
        // several block boundaries per pair.
        let d = distance_block_len(6) * 3 + 13;
        let data: Vec<Vec<f32>> = (0..6)
            .map(|i| {
                (0..d)
                    .map(|c| ((i * 131 + c) as f32 * 0.01).sin())
                    .collect()
            })
            .collect();
        let v = views(&data);
        let cache = DistanceCache::build(&v, &Engine::sequential());
        for i in 0..6 {
            for j in 0..6 {
                let direct = if i == j {
                    0.0
                } else {
                    squared_l2_distance_slices(&data[i], &data[j])
                };
                assert_eq!(cache.get(i, j).to_bits(), direct.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn fast_math_cache_uses_gram_within_the_documented_bound() {
        let d = 700; // not a multiple of the lanes or the block
        let data: Vec<Vec<f32>> = (0..7)
            .map(|i| {
                (0..d)
                    .map(|c| ((i * 31 + c) as f32 * 0.05).cos() * 3.0)
                    .collect()
            })
            .collect();
        let v = views(&data);
        let exact = DistanceCache::build(&v, &Engine::sequential());
        let gram = DistanceCache::build(&v, &Engine::sequential().fast_math(true));
        assert!(!exact.used_gram());
        assert!(gram.used_gram());
        for i in 0..7 {
            for j in 0..7 {
                let bound = gram_error_bound(
                    7,
                    d,
                    garfield_tensor::squared_norm_slices(&data[i]),
                    garfield_tensor::squared_norm_slices(&data[j]),
                );
                let err = (gram.get(i, j) - exact.get(i, j)).abs();
                assert!(
                    err <= bound,
                    "({i},{j}): |{} - {}| = {err} > {bound}",
                    gram.get(i, j),
                    exact.get(i, j)
                );
                assert!(gram.get(i, j) >= 0.0, "gram distance went negative");
            }
        }
    }

    #[test]
    fn fast_math_parallel_is_bit_identical_to_fast_math_sequential() {
        let data: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                (0..4096)
                    .map(|c| ((i * 31 + c) as f32 * 0.1).sin())
                    .collect()
            })
            .collect();
        let v = views(&data);
        let seq = DistanceCache::build(&v, &Engine::sequential().fast_math(true));
        let par = DistanceCache::build(&v, &Engine::with_threads(4).fast_math(true));
        assert!(seq.used_gram() && par.used_gram());
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(seq.get(i, j).to_bits(), par.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn fast_math_falls_back_to_exact_on_non_finite_inputs() {
        let data = vec![
            vec![0.0f32, f32::NAN, 1.0, 2.0],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![3.0, 4.0, 5.0, 6.0],
        ];
        let v = views(&data);
        let exact = DistanceCache::build(&v, &Engine::sequential());
        let fast = DistanceCache::build(&v, &Engine::sequential().fast_math(true));
        assert!(!fast.used_gram(), "NaN payload must force the exact kernel");
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(exact.get(i, j).to_bits(), fast.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn fast_math_falls_back_to_exact_on_norm_overflow() {
        // Finite inputs whose squared norm overflows f32: ‖a‖² = d·(1e20)²
        // = +inf, so the Gram identity would poison every distance even
        // though the exact distance (a − b ≡ 0 here) is finite.
        let data = vec![vec![1e20f32; 64], vec![1e20f32; 64], vec![0.0f32; 64]];
        let v = views(&data);
        let fast = DistanceCache::build(&v, &Engine::sequential().fast_math(true));
        assert!(!fast.used_gram(), "inf norm must force the exact kernel");
        assert_eq!(fast.get(0, 1), 0.0);
        let exact = DistanceCache::build(&v, &Engine::sequential());
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(exact.get(i, j).to_bits(), fast.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn incremental_bulyan_selection_matches_per_round_rescoring() {
        // Same cache, both paths: force the fallback by scoring through a
        // synthetic non-finite flag is impossible from outside, so instead
        // compare the incremental path against a hand-rolled per-round
        // re-sort over the same cache.
        let data: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..12).map(|c| ((i * 7 + c) as f32).cos()).collect())
            .collect();
        let v = views(&data);
        let cache = DistanceCache::build(&v, &Engine::sequential());
        let f = 1usize;
        let k = 7usize;
        let mut scratch = SelectionScratch::new();
        let mut fast = Vec::new();
        bulyan_select_cached(&cache, f, k, &mut scratch, &mut fast);

        // Reference: per-round recompute.
        let mut remaining: Vec<usize> = (0..9).collect();
        let mut slow = Vec::new();
        for _ in 0..k {
            if remaining.len() <= 1 {
                slow.append(&mut remaining);
                break;
            }
            let m = remaining.len();
            let f_eff = f.min(m.saturating_sub(3));
            let nb = m.saturating_sub(f_eff + 2).max(1);
            let mut best = (0usize, f32::INFINITY);
            for (pos, &i) in remaining.iter().enumerate() {
                let mut row: Vec<f32> = remaining
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| cache.get(i, j))
                    .collect();
                row.sort_unstable_by(cmp_f32);
                let s: f32 = row.iter().take(nb).sum();
                if s < best.1 {
                    best = (pos, s);
                }
            }
            slow.push(remaining.remove(best.0));
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn average_views_matches_tensor_averaging() {
        let data = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let out = average_views(&views(&data), &Engine::sequential());
        assert_eq!(out, vec![3.0, 4.0]);
        let par = average_views(&views(&data), &Engine::with_threads(3));
        assert_eq!(out, par);
    }

    #[test]
    fn fused_average_and_norms_is_bit_identical_and_engine_independent() {
        // Odd length exercises partial tiles and the kernel-lane remainder.
        let d = 3 * super::NORM_TILE + 777;
        let mut rng = garfield_tensor::TensorRng::seed_from(0xfa57);
        let data: Vec<Vec<f32>> = (0..5)
            .map(|_| rng.normal_tensor(d).data().to_vec())
            .collect();
        let v = views(&data);
        let (avg_seq, norms_seq) = average_and_square_norms(&v, &Engine::sequential());
        let (avg_par, norms_par) = average_and_square_norms(&v, &Engine::with_threads(4));
        // The average half must be bit-identical to the plain average kernel,
        // on both engines.
        let reference = average_views(&v, &Engine::sequential());
        let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&avg_seq), bits(&reference));
        assert_eq!(bits(&avg_par), bits(&reference));
        // The norms must be engine-independent bit for bit, and agree with
        // the whole-slice norm kernel up to tiling rounding.
        assert_eq!(
            norms_seq.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
            norms_par.iter().map(|x| x.to_bits()).collect::<Vec<u64>>(),
        );
        for (input, &norm) in data.iter().zip(&norms_seq) {
            let whole = f64::from(squared_norm_slices(input));
            assert!((norm - whole).abs() <= 1e-3 * whole.max(1.0));
        }
    }
}
