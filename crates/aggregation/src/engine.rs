//! The parallel, zero-copy aggregation engine.
//!
//! Garfield's evaluation shows the GAR is the dominant server-side cost:
//! Multi-Krum and Bulyan are `O(n² d)` in pairwise distances, and the old
//! implementations re-derived those distances from freshly cloned [`Tensor`]s
//! on every call (Bulyan even re-ran Krum from scratch per selection round).
//! This module removes both costs:
//!
//! * **Zero-copy inputs** — GARs consume [`GradientView`]s, borrowed `&[f32]`
//!   slices over wire payloads or tensor storage. Only the final output is
//!   copied.
//! * **One shared [`DistanceCache`]** — the n×n squared-distance matrix is
//!   computed once, chunked across OS threads (vendored crossbeam scoped
//!   threads), and reused across Krum scoring and the whole Bulyan selection
//!   loop, whose repeated-Krum inner loop becomes incremental score updates
//!   on pre-sorted neighbour lists.
//! * **Deterministic parallelism** — every parallel fill computes element `k`
//!   with exactly the scalar code the sequential path runs, each element on
//!   one thread, so parallel and sequential engines are **bit-identical** by
//!   construction (enforced by the engine-equivalence proptests and the
//!   `expfig perf` harness).

use crossbeam::thread as cb_thread;
use garfield_tensor::{squared_l2_distance_slices, total_cmp_f32 as cmp_f32, GradientView};
use std::cmp::Ordering;
use std::sync::OnceLock;

/// Below this many scalar operations a parallel engine stays on the calling
/// thread: spawning costs more than the work saves.
const PAR_MIN_WORK: usize = 1 << 15;

/// Execution policy of the aggregation engine: how many OS threads to chunk
/// data-parallel fills across.
///
/// `Engine::sequential()` is the retained single-threaded reference path;
/// `Engine::auto()` matches the machine's parallelism. Both produce
/// bit-identical outputs — parallelism changes *where* each element is
/// computed, never *how*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Engine {
    threads: usize,
}

impl Engine {
    /// The single-threaded reference engine.
    pub fn sequential() -> Self {
        Engine { threads: 1 }
    }

    /// An engine sized to the machine (`std::thread::available_parallelism`).
    pub fn auto() -> Self {
        static CORES: OnceLock<usize> = OnceLock::new();
        let threads = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
        Engine { threads }
    }

    /// An engine with an explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Engine {
            threads: threads.max(1),
        }
    }

    /// Number of threads fills are chunked across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this engine ever spawns worker threads.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    fn threads_for(&self, items: usize, work_per_item: usize) -> usize {
        if self.threads <= 1 || items.saturating_mul(work_per_item.max(1)) < PAR_MIN_WORK {
            1
        } else {
            self.threads.min(items)
        }
    }

    /// Fills `out` in contiguous chunks: `fill(base, chunk)` must write
    /// `chunk[k]` as a pure function of the absolute index `base + k`.
    ///
    /// The chunk closure runs once per chunk (so it may allocate per-chunk
    /// scratch); with one thread — or when `items × work_per_item` is too
    /// small to amortise a spawn — everything runs on the calling thread.
    pub(crate) fn fill_chunks<T, F>(&self, out: &mut [T], work_per_item: usize, fill: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if out.is_empty() {
            return;
        }
        let threads = self.threads_for(out.len(), work_per_item);
        if threads <= 1 {
            fill(0, out);
            return;
        }
        let chunk = out.len().div_ceil(threads);
        cb_thread::scope(|s| {
            // The calling thread takes the last chunk itself instead of
            // idling in the scope join: exactly `threads` runnable threads,
            // one fewer spawn per fill.
            let mut chunks: Vec<(usize, &mut [T])> = out.chunks_mut(chunk).enumerate().collect();
            let local = chunks.pop();
            for (c, slice) in chunks {
                let fill = &fill;
                s.spawn(move || fill(c * chunk, slice));
            }
            if let Some((c, slice)) = local {
                fill(c * chunk, slice);
            }
        });
    }

    /// Element-wise parallel fill: `out[k] = f(k)`.
    pub(crate) fn fill<T, F>(&self, out: &mut [T], work_per_item: usize, f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.fill_chunks(out, work_per_item, |base, chunk| {
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = f(base + k);
            }
        });
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::auto()
    }
}

/// The n×n squared-distance matrix of a set of gradient views, computed once
/// and shared across every distance-based GAR decision.
///
/// Building the cache is the `O(n² d)` hot spot of Krum, Multi-Krum, MDA and
/// Bulyan; the engine chunks the `n(n-1)/2` unique pairs across threads, each
/// pair computed sequentially over `d` on one thread (bit-identical to the
/// sequential engine).
#[derive(Debug, Clone)]
pub struct DistanceCache {
    n: usize,
    dist: Vec<f32>,
    finite: bool,
}

impl DistanceCache {
    /// Computes all pairwise squared distances of `inputs` under `engine`.
    pub fn build(inputs: &[GradientView<'_>], engine: &Engine) -> Self {
        let n = inputs.len();
        let d = inputs.first().map(|v| v.len()).unwrap_or(0);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i as u32, j as u32));
            }
        }
        let mut vals = vec![0.0f32; pairs.len()];
        engine.fill(&mut vals, d, |k| {
            let (i, j) = pairs[k];
            squared_l2_distance_slices(inputs[i as usize].data(), inputs[j as usize].data())
        });
        let mut dist = vec![0.0f32; n * n];
        for (&(i, j), &v) in pairs.iter().zip(vals.iter()) {
            dist[i as usize * n + j as usize] = v;
            dist[j as usize * n + i as usize] = v;
        }
        let finite = vals.iter().all(|v| v.is_finite());
        DistanceCache { n, dist, finite }
    }

    /// Number of cached inputs.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cached squared distance between inputs `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.dist[i * self.n + j]
    }

    /// Whether every cached distance is finite (NaN inputs poison distances;
    /// the incremental Bulyan path requires a totally ordered matrix and
    /// falls back to per-round rescoring otherwise).
    pub fn is_finite(&self) -> bool {
        self.finite
    }
}

/// Reusable scratch buffers for cache-based selection.
///
/// All selection entry points write into these pre-sized buffers and sort
/// in place with `sort_unstable`, so steady-state selection (after the first
/// warm-up call) performs **zero heap allocations** — asserted by the
/// counting-allocator regression test.
#[derive(Debug, Default)]
pub struct SelectionScratch {
    row: Vec<f32>,
    scores: Vec<f32>,
    order: Vec<usize>,
    remaining: Vec<usize>,
    /// Flattened per-candidate sorted neighbour-distance lists (stride n−1),
    /// used by the incremental Bulyan selection loop.
    neighbours: Vec<f32>,
    neighbour_len: Vec<usize>,
}

impl SelectionScratch {
    /// Creates empty scratch; buffers grow to fit on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        SelectionScratch::default()
    }

    /// The scores the last scoring pass produced, indexed by candidate.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// The index order the last selection pass produced (best first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

/// Computes every candidate's Krum score — the sum of its squared distances
/// to its `n − f − 2` closest neighbours — from the cache into
/// `scratch.scores`.
pub(crate) fn krum_scores_cached(cache: &DistanceCache, f: usize, scratch: &mut SelectionScratch) {
    let n = cache.n();
    let neighbours = n.saturating_sub(f + 2).max(1);
    scratch.scores.clear();
    scratch.scores.reserve(n);
    for i in 0..n {
        scratch.row.clear();
        scratch.row.reserve(n.saturating_sub(1));
        for j in 0..n {
            if j != i {
                scratch.row.push(cache.get(i, j));
            }
        }
        scratch.row.sort_unstable_by(cmp_f32);
        scratch
            .scores
            .push(scratch.row.iter().take(neighbours).sum());
    }
}

/// Writes the indices of the `m` smallest scores into `scratch.order`
/// (ascending score, ties broken by index — the stable-sort order the
/// original implementation produced).
pub(crate) fn smallest_scores_cached(m: usize, scratch: &mut SelectionScratch) {
    scratch.order.clear();
    scratch.order.extend(0..scratch.scores.len());
    let scores = &scratch.scores;
    scratch
        .order
        .sort_unstable_by(|&a, &b| cmp_f32(&scores[a], &scores[b]).then(a.cmp(&b)));
    scratch.order.truncate(m);
}

/// Cache-based Krum selection: the single smallest-scoring index.
pub(crate) fn krum_best_cached(
    cache: &DistanceCache,
    f: usize,
    scratch: &mut SelectionScratch,
) -> usize {
    krum_scores_cached(cache, f, scratch);
    smallest_scores_cached(1, scratch);
    scratch.order[0]
}

/// The selected indices (ascending score order) of Multi-Krum, left in
/// `scratch.order`.
pub(crate) fn multi_krum_cached(
    cache: &DistanceCache,
    f: usize,
    m: usize,
    scratch: &mut SelectionScratch,
) {
    krum_scores_cached(cache, f, scratch);
    smallest_scores_cached(m, scratch);
}

/// Bulyan's selection phase over the shared cache: iterate Krum `k` times,
/// moving the winner out of the candidate pool each round.
///
/// On a finite cache the repeated-Krum inner loop is *incremental*: each
/// candidate's neighbour distances are sorted once, the selected candidate's
/// distance is deleted from every survivor's sorted list in `O(n)`, and each
/// round's score is a prefix sum — `O(n² log n)` once plus `O(n²)` per round,
/// with no dependence on the gradient dimension `d`. Non-finite distances
/// (NaN payloads) break total ordering, so those fall back to per-round
/// rescoring from the cache, which is what the old clone-the-pool code
/// computed — still without touching `d` again.
pub(crate) fn bulyan_select_cached(
    cache: &DistanceCache,
    f: usize,
    k: usize,
    scratch: &mut SelectionScratch,
    selected: &mut Vec<usize>,
) {
    let n = cache.n();
    selected.clear();
    scratch.remaining.clear();
    scratch.remaining.extend(0..n);
    let incremental = cache.is_finite();
    let stride = n.saturating_sub(1);
    if incremental {
        scratch.neighbours.clear();
        scratch.neighbours.resize(n * stride, 0.0);
        scratch.neighbour_len.clear();
        scratch.neighbour_len.resize(n, stride);
        for i in 0..n {
            let list = &mut scratch.neighbours[i * stride..(i + 1) * stride];
            let mut w = 0;
            for j in 0..n {
                if j != i {
                    list[w] = cache.get(i, j);
                    w += 1;
                }
            }
            list.sort_unstable_by(cmp_f32);
        }
    }
    for _ in 0..k {
        let m = scratch.remaining.len();
        if m <= 1 {
            selected.append(&mut scratch.remaining);
            break;
        }
        // Krum parameters over the current pool, matching the original
        // shrink-the-pool semantics: f is capped so the neighbour count
        // stays valid as the pool shrinks.
        let f_eff = f.min(m.saturating_sub(3));
        let nb = m.saturating_sub(f_eff + 2).max(1);

        // Score every remaining candidate.
        let mut best_pos = 0usize;
        let mut best_score = f32::INFINITY;
        let mut have_best = false;
        for (pos, &i) in scratch.remaining.iter().enumerate() {
            let score: f32 = if incremental {
                let len = scratch.neighbour_len[i];
                scratch.neighbours[i * stride..i * stride + len]
                    .iter()
                    .take(nb)
                    .sum()
            } else {
                scratch.row.clear();
                scratch.row.reserve(m.saturating_sub(1));
                for &j in &scratch.remaining {
                    if j != i {
                        scratch.row.push(cache.get(i, j));
                    }
                }
                scratch.row.sort_unstable_by(cmp_f32);
                scratch.row.iter().take(nb).sum()
            };
            // First index wins ties, exactly like the stable argmin of the
            // original smallest-scores path.
            if !have_best || cmp_f32(&score, &best_score) == Ordering::Less {
                best_pos = pos;
                best_score = score;
                have_best = true;
            }
        }
        let winner = scratch.remaining.remove(best_pos);
        selected.push(winner);

        if incremental {
            // Delete the winner's distance from every survivor's sorted
            // list: binary search to its first occurrence, shift left.
            // Duplicate distances are interchangeable (equal values), so
            // removing the first occurrence preserves every prefix sum.
            for &i in &scratch.remaining {
                let len = scratch.neighbour_len[i];
                let list = &mut scratch.neighbours[i * stride..i * stride + len];
                let v = cache.get(i, winner);
                let pos = list.partition_point(|x| cmp_f32(x, &v) == Ordering::Less);
                debug_assert!(pos < len && list[pos].to_bits() == v.to_bits());
                list.copy_within(pos + 1.., pos);
                scratch.neighbour_len[i] = len - 1;
            }
        }
    }
}

/// Averages the views at `indices` into `out` (sum accumulated from 0.0 in
/// `indices` order per coordinate, then scaled — the accumulation order of
/// the original tensor loop, chunked across threads by coordinate range).
pub(crate) fn average_indices_into(
    inputs: &[GradientView<'_>],
    indices: &[usize],
    engine: &Engine,
    out: &mut Vec<f32>,
) {
    let d = inputs.first().map(|v| v.len()).unwrap_or(0);
    out.clear();
    out.resize(d, 0.0);
    let inv = 1.0 / indices.len().max(1) as f32;
    engine.fill_chunks(out, indices.len(), |base, chunk| {
        for (k, slot) in chunk.iter_mut().enumerate() {
            let c = base + k;
            let mut sum = 0.0f32;
            for &i in indices {
                sum += inputs[i].data()[c];
            }
            *slot = sum * inv;
        }
    });
}

/// Averages all views (the plain-averaging GAR and the variance probe's
/// empirical-mean step share this kernel).
pub fn average_views(inputs: &[GradientView<'_>], engine: &Engine) -> Vec<f32> {
    let indices: Vec<usize> = (0..inputs.len()).collect();
    let mut out = Vec::new();
    average_indices_into(inputs, &indices, engine, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::Tensor;

    fn views(data: &[Vec<f32>]) -> Vec<GradientView<'_>> {
        data.iter().map(GradientView::from).collect()
    }

    #[test]
    fn engines_report_their_shape() {
        assert_eq!(Engine::sequential().threads(), 1);
        assert!(!Engine::sequential().is_parallel());
        assert_eq!(Engine::with_threads(0).threads(), 1);
        assert_eq!(Engine::with_threads(4).threads(), 4);
        assert!(Engine::auto().threads() >= 1);
        assert_eq!(Engine::default().threads(), Engine::auto().threads());
    }

    #[test]
    fn parallel_fill_matches_sequential_fill() {
        let mut seq = vec![0.0f32; 10_000];
        let mut par = vec![0.0f32; 10_000];
        Engine::sequential().fill(&mut seq, 64, |k| (k as f32).sin());
        Engine::with_threads(4).fill(&mut par, 64, |k| (k as f32).sin());
        assert_eq!(seq, par);
    }

    #[test]
    fn small_work_stays_on_the_calling_thread() {
        // 8 items × 1 op is far below the spawn threshold; this must not
        // deadlock or misindex when the engine short-circuits.
        let mut out = vec![0usize; 8];
        Engine::with_threads(8).fill(&mut out, 1, |k| k * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        Engine::with_threads(8).fill(&mut [] as &mut [usize], 1, |k| k);
    }

    #[test]
    fn distance_cache_matches_direct_distances() {
        let data: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..16).map(|c| (i * 16 + c) as f32 * 0.25).collect())
            .collect();
        let v = views(&data);
        let cache = DistanceCache::build(&v, &Engine::sequential());
        assert_eq!(cache.n(), 5);
        assert!(cache.is_finite());
        for i in 0..5 {
            assert_eq!(cache.get(i, i), 0.0);
            for j in 0..5 {
                let a = Tensor::from_slice(&data[i]);
                let b = Tensor::from_slice(&data[j]);
                assert_eq!(
                    cache.get(i, j),
                    garfield_tensor::squared_l2_distance(&a, &b)
                );
                assert_eq!(cache.get(i, j), cache.get(j, i));
            }
        }
    }

    #[test]
    fn parallel_cache_is_bit_identical_to_sequential() {
        let data: Vec<Vec<f32>> = (0..9)
            .map(|i| {
                (0..4096)
                    .map(|c| ((i * 31 + c) as f32 * 0.1).sin())
                    .collect()
            })
            .collect();
        let v = views(&data);
        let seq = DistanceCache::build(&v, &Engine::sequential());
        let par = DistanceCache::build(&v, &Engine::with_threads(4));
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(seq.get(i, j).to_bits(), par.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn nan_payloads_mark_the_cache_non_finite() {
        let data = vec![vec![0.0f32, f32::NAN], vec![1.0, 2.0], vec![3.0, 4.0]];
        let cache = DistanceCache::build(&views(&data), &Engine::sequential());
        assert!(!cache.is_finite());
    }

    #[test]
    fn incremental_bulyan_selection_matches_per_round_rescoring() {
        // Same cache, both paths: force the fallback by scoring through a
        // synthetic non-finite flag is impossible from outside, so instead
        // compare the incremental path against a hand-rolled per-round
        // re-sort over the same cache.
        let data: Vec<Vec<f32>> = (0..9)
            .map(|i| (0..12).map(|c| ((i * 7 + c) as f32).cos()).collect())
            .collect();
        let v = views(&data);
        let cache = DistanceCache::build(&v, &Engine::sequential());
        let f = 1usize;
        let k = 7usize;
        let mut scratch = SelectionScratch::new();
        let mut fast = Vec::new();
        bulyan_select_cached(&cache, f, k, &mut scratch, &mut fast);

        // Reference: per-round recompute.
        let mut remaining: Vec<usize> = (0..9).collect();
        let mut slow = Vec::new();
        for _ in 0..k {
            if remaining.len() <= 1 {
                slow.append(&mut remaining);
                break;
            }
            let m = remaining.len();
            let f_eff = f.min(m.saturating_sub(3));
            let nb = m.saturating_sub(f_eff + 2).max(1);
            let mut best = (0usize, f32::INFINITY);
            for (pos, &i) in remaining.iter().enumerate() {
                let mut row: Vec<f32> = remaining
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| cache.get(i, j))
                    .collect();
                row.sort_unstable_by(cmp_f32);
                let s: f32 = row.iter().take(nb).sum();
                if s < best.1 {
                    best = (pos, s);
                }
            }
            slow.push(remaining.remove(best.0));
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn average_views_matches_tensor_averaging() {
        let data = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let out = average_views(&views(&data), &Engine::sequential());
        assert_eq!(out, vec![3.0, 4.0]);
        let par = average_views(&views(&data), &Engine::with_threads(3));
        assert_eq!(out, par);
    }
}
