//! Per-peer Byzantine suspicion scoring — the forensics ledger.
//!
//! Robust GARs *mask* Byzantine inputs; they do not tell an operator **which
//! peer** is attacking. The [`SuspicionLedger`] turns the selection evidence
//! each distance-based GAR already produces (see
//! [`SelectionOutcome`](crate::SelectionOutcome)) into a per-peer score that
//! an operator can rank, scrape and alert on:
//!
//! * every round, each peer's mean squared distance to the selected set is
//!   normalised into a **z-score** across that round's population — this
//!   makes rounds comparable as the gradient norm decays during training.
//!   Only the positive part counts: below-mean distance is what selection
//!   rewards, and a negative term would let a deliberately central attacker
//!   cancel the evidence from the other channels;
//! * each peer's squared gradient **norm** is z-scored the same way, and the
//!   part of that deviation beyond one standard deviation counts against the
//!   peer in *either direction* — this is the channel that catches attacks
//!   the distance channel is blind to: a zeroed gradient near convergence
//!   sits *inside* the honest noise ball (closer to everyone than the honest
//!   inputs are to each other), yet its norm is an extreme outlier;
//! * peers the GAR **excluded** earn a constant bonus on top of their
//!   z-score — near convergence an attacker that replays stale or zeroed
//!   gradients can sit close to the honest cloud in raw distance, but the
//!   GAR still refuses it round after round, and the exclusion streak is the
//!   durable signal;
//! * the per-round evidence is folded into an **EWMA** so one noisy round
//!   neither crowns nor clears a peer.
//!
//! The ledger always maintains its state (it is cheap: `O(n)` scalar work
//! per round); the observable side effects — `garfield_peer_suspicion{peer}`
//! gauges, `garfield_gar_excluded_total{peer}` counters and `peer_excluded`
//! flight events — are only emitted while observability is enabled.

use crate::SelectionOutcome;
use std::collections::BTreeMap;

/// Mean and (population) standard deviation of `values`.
fn population_stats(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Default EWMA smoothing factor (weight of the newest round). The effective
/// window is `(2 − α)/α ≈ 19` rounds: long enough that an honest peer's
/// unlucky streak (exclusions and z-scores are noisy round to round) averages
/// out, short enough that an attacker that starts mid-run is flagged within
/// tens of rounds. Persistent attack signal is unaffected by the smoothing.
pub const DEFAULT_ALPHA: f64 = 0.1;

/// Default score bonus per round a peer is excluded by the GAR.
pub const DEFAULT_EXCLUSION_WEIGHT: f64 = 2.0;

/// Norm-deviation deadband: only the part of a peer's absolute norm z-score
/// beyond this threshold counts. Honest minibatch noise keeps |z| mostly
/// below 1, so the channel is silent on healthy clusters; an attacker that
/// zeroes or amplifies its gradient pins |z| near the population maximum
/// `√(n−1)` every round and accumulates the excess.
const NORM_DEADBAND: f64 = 1.0;

/// Weight of the (deadbanded) norm-deviation term relative to the distance
/// z-score. Above 1 because the deadband already subtracts the honest
/// baseline — what is left is almost pure attack signal.
const NORM_WEIGHT: f64 = 2.0;

/// Z-scores are clamped to this magnitude so a single astronomically distant
/// gradient (e.g. the `Random` attack at scale 1e6) cannot poison the EWMA
/// for the rest of the run — suspicion should decay once an attack stops.
const Z_CLAMP: f64 = 8.0;

/// Per-peer suspicion state, exported by [`SuspicionLedger::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSuspicion {
    /// The peer's node id.
    pub peer: u32,
    /// EWMA suspicion score (higher = more suspicious).
    pub score: f64,
    /// Rounds in which the GAR excluded this peer's input.
    pub excluded_rounds: u64,
    /// Rounds in which this peer's input was observed at all.
    pub observed_rounds: u64,
    /// The raw z-score of the most recent round.
    pub last_z: f64,
}

struct PeerState {
    score: f64,
    excluded_rounds: u64,
    observed_rounds: u64,
    last_z: f64,
    gauge: garfield_obs::Gauge,
    excluded_total: garfield_obs::Counter,
}

impl PeerState {
    fn register(peer: u32) -> Self {
        let label = peer.to_string();
        let labels: &[(&'static str, &str)] = &[("peer", label.as_str())];
        PeerState {
            score: 0.0,
            excluded_rounds: 0,
            observed_rounds: 0,
            last_z: 0.0,
            gauge: garfield_obs::metrics::gauge(
                "garfield_peer_suspicion",
                "EWMA Byzantine suspicion score per peer (z-score of distance \
                 to the GAR's selected set, plus norm-deviation and exclusion \
                 terms).",
                labels,
            ),
            excluded_total: garfield_obs::metrics::counter(
                "garfield_gar_excluded_total",
                "Rounds in which the GAR excluded this peer's gradient.",
                labels,
            ),
        }
    }
}

/// Accumulates per-peer suspicion evidence across training rounds.
///
/// Feed it once per aggregation with the peer id behind each view index and
/// the GAR's [`SelectionOutcome`](crate::SelectionOutcome); query it with
/// [`snapshot`](SuspicionLedger::snapshot) /
/// [`ranking`](SuspicionLedger::ranking).
pub struct SuspicionLedger {
    alpha: f64,
    exclusion_weight: f64,
    rounds: u64,
    peers: BTreeMap<u32, PeerState>,
}

impl Default for SuspicionLedger {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA, DEFAULT_EXCLUSION_WEIGHT)
    }
}

impl SuspicionLedger {
    /// Creates a ledger with the given EWMA factor (`0 < alpha <= 1`, weight
    /// of the newest round) and per-round exclusion bonus.
    pub fn new(alpha: f64, exclusion_weight: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        SuspicionLedger {
            alpha,
            exclusion_weight,
            rounds: 0,
            peers: BTreeMap::new(),
        }
    }

    /// Number of rounds observed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Folds one aggregation round into the ledger.
    ///
    /// `peers[i]` is the node id whose gradient sat at view index `i` of the
    /// aggregation — the caller owns that mapping (replies are collected in
    /// sorted-peer order by the server actor). Indices of `outcome` beyond
    /// `peers.len()` are ignored, as are peers beyond the outcome (both only
    /// happen on malformed input).
    pub fn observe_round(&mut self, round: u64, peers: &[u32], outcome: &SelectionOutcome) {
        let n = peers.len().min(outcome.distance.len());
        if n == 0 {
            return;
        }
        self.rounds += 1;

        // Per-round z-scores: rounds stay comparable as gradients shrink.
        let distances = &outcome.distance[..n];
        let (dist_mean, dist_std) = population_stats(distances);
        // The norm channel is optional (hand-built outcomes may omit it).
        let norms = (outcome.norm.len() >= n).then(|| &outcome.norm[..n]);
        let norm_stats = norms.map(population_stats);

        for (i, &peer) in peers.iter().enumerate() {
            let z = if dist_std > f64::EPSILON && distances[i].is_finite() {
                ((distances[i] - dist_mean) / dist_std).clamp(-Z_CLAMP, Z_CLAMP)
            } else {
                0.0
            };
            // Two-sided norm anomaly beyond the honest-noise deadband. Both
            // tails matter: a zeroed gradient is as Byzantine as an amplified
            // one, and the distance channel sees neither at convergence.
            let norm_term = match (norms, norm_stats) {
                (Some(ns), Some((m, s))) if s > f64::EPSILON && ns[i].is_finite() => {
                    (((ns[i] - m) / s).abs().min(Z_CLAMP) - NORM_DEADBAND).max(0.0) * NORM_WEIGHT
                }
                _ => 0.0,
            };
            let excluded = !outcome.selected.contains(&i);
            // The distance term is floored at zero: sitting *below* the mean
            // is what selection rewards, and letting it go negative would
            // hand a central attacker (zeroed or mimicking gradients) credit
            // that cancels the norm channel's evidence against it.
            let instant =
                z.max(0.0) + norm_term + if excluded { self.exclusion_weight } else { 0.0 };

            let alpha = self.alpha;
            let state = self
                .peers
                .entry(peer)
                .or_insert_with(|| PeerState::register(peer));
            state.observed_rounds += 1;
            state.last_z = z;
            state.score = if state.observed_rounds == 1 {
                instant
            } else {
                alpha * instant + (1.0 - alpha) * state.score
            };
            state.gauge.set(state.score);
            if excluded {
                state.excluded_rounds += 1;
                state.excluded_total.inc();
                garfield_obs::flight::record(
                    garfield_obs::flight::EventKind::PeerExcluded,
                    round,
                    Some(peer),
                    distances[i],
                );
            }
        }
    }

    /// Current per-peer state, sorted by peer id.
    pub fn snapshot(&self) -> Vec<PeerSuspicion> {
        self.peers
            .iter()
            .map(|(&peer, s)| PeerSuspicion {
                peer,
                score: s.score,
                excluded_rounds: s.excluded_rounds,
                observed_rounds: s.observed_rounds,
                last_z: s.last_z,
            })
            .collect()
    }

    /// Peer ids ranked most-suspicious first (score descending, ties by
    /// ascending peer id — deterministic).
    pub fn ranking(&self) -> Vec<u32> {
        let mut order: Vec<(u32, f64)> = self.peers.iter().map(|(&p, s)| (p, s.score)).collect();
        order.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        order.into_iter().map(|(p, _)| p).collect()
    }

    /// The `k` most suspicious peers.
    pub fn top(&self, k: usize) -> Vec<u32> {
        let mut r = self.ranking();
        r.truncate(k);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(selected: Vec<usize>, distance: Vec<f64>) -> SelectionOutcome {
        SelectionOutcome {
            selected,
            distance,
            norm: Vec::new(),
        }
    }

    #[test]
    fn distant_excluded_peer_rises_to_the_top() {
        let mut ledger = SuspicionLedger::default();
        let peers = [10u32, 11, 12, 13, 14];
        for round in 0..20 {
            // Peer 14 (index 4) is consistently far away and excluded.
            let o = outcome(vec![0, 1, 2, 3], vec![1.0, 1.1, 0.9, 1.0, 50.0]);
            ledger.observe_round(round, &peers, &o);
        }
        assert_eq!(ledger.ranking()[0], 14);
        assert_eq!(ledger.top(1), vec![14]);
        let snap = ledger.snapshot();
        let bad = snap.iter().find(|p| p.peer == 14).unwrap();
        assert_eq!(bad.excluded_rounds, 20);
        assert_eq!(bad.observed_rounds, 20);
        assert!(bad.score > 1.0, "score {}", bad.score);
        let good = snap.iter().find(|p| p.peer == 10).unwrap();
        assert!(good.score < bad.score);
        assert_eq!(good.excluded_rounds, 0);
    }

    #[test]
    fn exclusion_alone_builds_suspicion_when_distances_collapse() {
        // Near convergence all distances can be equal; the exclusion streak
        // must still separate the refused peer.
        let mut ledger = SuspicionLedger::default();
        let peers = [0u32, 1, 2];
        for round in 0..10 {
            let o = outcome(vec![0, 1], vec![1.0, 1.0, 1.0]);
            ledger.observe_round(round, &peers, &o);
        }
        assert_eq!(ledger.ranking()[0], 2);
        let snap = ledger.snapshot();
        assert!(snap.iter().find(|p| p.peer == 2).unwrap().score > 1.0);
        assert!(snap.iter().find(|p| p.peer == 0).unwrap().score.abs() < 1e-9);
    }

    #[test]
    fn suspicion_decays_once_the_attack_stops() {
        let mut ledger = SuspicionLedger::default();
        let peers = [0u32, 1, 2, 3, 4];
        for round in 0..5 {
            let o = outcome(vec![0, 1, 2, 3], vec![1.0, 1.0, 1.0, 1.0, 100.0]);
            ledger.observe_round(round, &peers, &o);
        }
        let hot = ledger
            .snapshot()
            .iter()
            .find(|p| p.peer == 4)
            .unwrap()
            .score;
        for round in 5..60 {
            let o = outcome(vec![0, 1, 2, 3, 4], vec![1.0, 1.0, 1.0, 1.0, 1.0]);
            ledger.observe_round(round, &peers, &o);
        }
        let cooled = ledger
            .snapshot()
            .iter()
            .find(|p| p.peer == 4)
            .unwrap()
            .score;
        assert!(cooled < hot / 10.0, "hot {hot} cooled {cooled}");
    }

    #[test]
    fn z_scores_are_clamped_against_astronomical_outliers() {
        let mut ledger = SuspicionLedger::default();
        let peers = [0u32, 1, 2];
        let o = outcome(vec![0, 1], vec![1.0, 1.0, 1e30]);
        ledger.observe_round(0, &peers, &o);
        let snap = ledger.snapshot();
        let bad = snap.iter().find(|p| p.peer == 2).unwrap();
        assert!(bad.score <= Z_CLAMP + DEFAULT_EXCLUSION_WEIGHT);
        assert!(bad.last_z <= Z_CLAMP);
    }

    #[test]
    fn empty_and_mismatched_inputs_are_ignored_safely() {
        let mut ledger = SuspicionLedger::default();
        ledger.observe_round(0, &[], &outcome(vec![], vec![]));
        assert_eq!(ledger.rounds(), 0);
        // Mismatched lengths: only the common prefix is scored.
        ledger.observe_round(1, &[0, 1], &outcome(vec![0], vec![1.0, 2.0, 3.0]));
        assert_eq!(ledger.snapshot().len(), 2);
    }

    #[test]
    fn a_zeroed_gradient_is_flagged_by_its_norm_even_when_central() {
        // The stealth case: near convergence a dropped (all-zero) gradient is
        // *closer* to everyone than the honest inputs are to each other, and
        // the GAR may even select it. Distance forensics see nothing; the
        // norm channel must still flag it.
        let mut ledger = SuspicionLedger::default();
        let peers = [0u32, 1, 2, 3, 4];
        for round in 0..20 {
            // The trim rotates through the honest peers; the central
            // attacker is always kept.
            let selected = (0..5usize).filter(|&i| i != (round % 4) as usize).collect();
            let o = SelectionOutcome {
                selected,
                distance: vec![2.0, 2.1, 1.9, 2.0, 1.0], // attacker is central
                norm: vec![1.0, 1.1, 0.9, 1.0, 0.0],     // ...but zeroed
            };
            ledger.observe_round(round, &peers, &o);
        }
        assert_eq!(ledger.ranking()[0], 4, "ranking {:?}", ledger.snapshot());
        let snap = ledger.snapshot();
        let bad = snap.iter().find(|p| p.peer == 4).unwrap().score;
        let best_honest = snap
            .iter()
            .filter(|p| p.peer != 4)
            .map(|p| p.score)
            .fold(f64::MIN, f64::max);
        assert!(
            bad > best_honest + 0.5,
            "attacker {bad} vs honest {best_honest}"
        );
    }

    #[test]
    fn ranking_ties_break_by_peer_id() {
        let mut ledger = SuspicionLedger::default();
        ledger.observe_round(0, &[7, 3], &outcome(vec![0, 1], vec![1.0, 1.0]));
        assert_eq!(ledger.ranking(), vec![3, 7]);
    }
}
