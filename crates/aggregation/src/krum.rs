//! Krum and Multi-Krum GARs (Blanchard et al., NeurIPS 2017).
//!
//! Both rules run on the zero-copy engine: the `O(n² d)` pairwise-distance
//! matrix is built once into a [`DistanceCache`] (chunked across threads by
//! the [`Engine`]) and every scoring decision reads from it. Selection
//! returns *indices*; the only data copied is the output vector.

use crate::engine::{krum_best_cached, multi_krum_cached};
use crate::gar::{fill_distance_profile, fill_norm_profile};
use crate::{
    validate_inputs, validate_views, AggregationError, AggregationResult, DistanceCache, Engine,
    Gar, SelectionOutcome, SelectionScratch,
};
use garfield_tensor::{GradientView, Tensor};

/// Krum: selects the single gradient with the smallest score.
///
/// Requires `n ≥ 2f + 3`. Complexity `O(n² d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Krum {
    n: usize,
    f: usize,
}

impl Krum {
    /// Creates a Krum rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 2f + 3`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 2 * f + 3 {
            return Err(AggregationError::ResilienceViolated {
                rule: "krum",
                n,
                f,
                requirement: "n >= 2f + 3",
            });
        }
        Ok(Krum { n, f })
    }

    /// Returns the index of the gradient Krum would select.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate`].
    pub fn select_index(&self, inputs: &[Tensor]) -> AggregationResult<usize> {
        validate_inputs(inputs, self.n)?;
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        self.select_index_views(&views, &Engine::auto())
    }

    /// Zero-copy selection: the index Krum selects among `inputs`.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate_views`].
    pub fn select_index_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<usize> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        Ok(self.select_cached(&cache, &mut scratch))
    }

    /// Allocation-free selection over a prebuilt cache: after one warm-up
    /// call the scratch buffers are sized and repeated calls perform zero
    /// heap allocations (asserted by the counting-allocator test).
    pub fn select_cached(&self, cache: &DistanceCache, scratch: &mut SelectionScratch) -> usize {
        krum_best_cached(cache, self.f, scratch)
    }
}

impl Gar for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        let idx = self.select_index_views(inputs, engine)?;
        Ok(inputs[idx].to_tensor())
    }

    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        let idx = krum_best_cached(&cache, self.f, &mut scratch);
        outcome.selected.clear();
        outcome.selected.push(idx);
        fill_distance_profile(&cache, &outcome.selected, &mut outcome.distance);
        fill_norm_profile(inputs, &mut outcome.norm);
        Ok(inputs[idx].to_tensor())
    }
}

/// Multi-Krum: averages the `n - f - 2` smallest-scoring gradients.
///
/// This is the variant AggregaThor and the paper's MSMW synchronous setup use;
/// it converges faster than Krum because it keeps more honest gradients.
/// Requires `n ≥ 2f + 3`. Complexity `O(n² d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiKrum {
    n: usize,
    f: usize,
    m: usize,
}

impl MultiKrum {
    /// Creates a Multi-Krum rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// The selection-set size defaults to `n - f - 2`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 2f + 3`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 2 * f + 3 {
            return Err(AggregationError::ResilienceViolated {
                rule: "multi-krum",
                n,
                f,
                requirement: "n >= 2f + 3",
            });
        }
        Ok(MultiKrum { n, f, m: n - f - 2 })
    }

    /// Number of gradients averaged by the selection phase.
    pub fn selection_size(&self) -> usize {
        self.m
    }

    /// Returns the indices of the gradients Multi-Krum selects, best first.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate`].
    pub fn select_indices(&self, inputs: &[Tensor]) -> AggregationResult<Vec<usize>> {
        validate_inputs(inputs, self.n)?;
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        self.select_indices_views(&views, &Engine::auto())
    }

    /// Zero-copy selection: the indices Multi-Krum selects, best first.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate_views`].
    pub fn select_indices_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Vec<usize>> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        multi_krum_cached(&cache, self.f, self.m, &mut scratch);
        Ok(scratch.order().to_vec())
    }

    /// Allocation-free selection over a prebuilt cache: the selected indices
    /// are left in the scratch's order buffer (best first) and returned as a
    /// slice.
    pub fn select_cached<'s>(
        &self,
        cache: &DistanceCache,
        scratch: &'s mut SelectionScratch,
    ) -> &'s [usize] {
        multi_krum_cached(cache, self.f, self.m, scratch);
        scratch.order()
    }
}

impl Gar for MultiKrum {
    fn name(&self) -> &'static str {
        "multi-krum"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        multi_krum_cached(&cache, self.f, self.m, &mut scratch);
        let mut out = Vec::new();
        crate::engine::average_indices_into(inputs, scratch.order(), engine, &mut out);
        Ok(Tensor::from(out))
    }

    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        multi_krum_cached(&cache, self.f, self.m, &mut scratch);
        outcome.selected.clear();
        outcome.selected.extend_from_slice(scratch.order());
        fill_distance_profile(&cache, &outcome.selected, &mut outcome.distance);
        fill_norm_profile(inputs, &mut outcome.norm);
        let mut out = Vec::new();
        crate::engine::average_indices_into(inputs, &outcome.selected, engine, &mut out);
        Ok(Tensor::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::TensorRng;

    fn honest_cluster(n: usize, d: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from(seed);
        (0..n)
            .map(|_| {
                let noise = rng.normal_tensor(d).scale(0.1);
                Tensor::ones(d).try_add(&noise).unwrap()
            })
            .collect()
    }

    /// Krum scores of owned tensors, through the cache path.
    fn krum_scores(inputs: &[Tensor], f: usize) -> Vec<f32> {
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let cache = DistanceCache::build(&views, &Engine::sequential());
        let mut scratch = SelectionScratch::new();
        crate::engine::krum_scores_cached(&cache, f, &mut scratch);
        scratch.scores().to_vec()
    }

    #[test]
    fn requirement_is_2f_plus_3() {
        assert!(Krum::new(5, 1).is_ok());
        assert!(Krum::new(4, 1).is_err());
        assert!(MultiKrum::new(9, 3).is_ok());
        assert!(MultiKrum::new(8, 3).is_err());
    }

    #[test]
    fn krum_selects_an_honest_gradient_under_attack() {
        let mut inputs = honest_cluster(4, 8, 1);
        inputs.push(Tensor::full(8usize, 1e6)); // Byzantine outlier
        let krum = Krum::new(5, 1).unwrap();
        let idx = krum.select_index(&inputs).unwrap();
        assert!(idx < 4, "Krum selected the Byzantine input");
        let out = krum.aggregate(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| v.abs() < 10.0));
    }

    #[test]
    fn krum_output_is_one_of_the_inputs() {
        let inputs = honest_cluster(5, 4, 2);
        let krum = Krum::new(5, 1).unwrap();
        let out = krum.aggregate(&inputs).unwrap();
        assert!(inputs.iter().any(|t| t == &out));
    }

    #[test]
    fn multi_krum_selection_size_and_robustness() {
        let mut inputs = honest_cluster(6, 8, 3);
        inputs.push(Tensor::full(8usize, -1e6));
        let mk = MultiKrum::new(7, 1).unwrap();
        assert_eq!(mk.selection_size(), 4);
        let selected = mk.select_indices(&inputs).unwrap();
        assert_eq!(selected.len(), 4);
        assert!(
            !selected.contains(&6),
            "Multi-Krum kept the Byzantine input"
        );
        let out = mk.aggregate(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| (0.0..2.0).contains(&v)));
    }

    #[test]
    fn multi_krum_without_byzantine_inputs_is_close_to_the_mean() {
        let inputs = honest_cluster(7, 16, 4);
        let mk = MultiKrum::new(7, 1).unwrap();
        let out = mk.aggregate(&inputs).unwrap();
        let mean = out.mean();
        assert!((mean - 1.0).abs() < 0.2, "mean of selection {mean}");
    }

    #[test]
    fn scores_are_permutation_consistent() {
        let inputs = honest_cluster(5, 4, 5);
        let scores = krum_scores(&inputs, 1);
        let mut reversed: Vec<Tensor> = inputs.clone();
        reversed.reverse();
        let mut scores_rev = krum_scores(&reversed, 1);
        scores_rev.reverse();
        for (a, b) in scores.iter().zip(scores_rev.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn view_and_tensor_selection_agree() {
        let inputs = honest_cluster(7, 32, 6);
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let krum = Krum::new(7, 1).unwrap();
        assert_eq!(
            krum.select_index(&inputs).unwrap(),
            krum.select_index_views(&views, &Engine::sequential())
                .unwrap()
        );
        let mk = MultiKrum::new(7, 1).unwrap();
        assert_eq!(
            mk.select_indices(&inputs).unwrap(),
            mk.select_indices_views(&views, &Engine::with_threads(3))
                .unwrap()
        );
    }

    #[test]
    fn validation_errors_propagate() {
        let krum = Krum::new(5, 1).unwrap();
        assert!(krum.aggregate(&[]).is_err());
        let bad: Vec<Tensor> = (0..5)
            .map(|i| {
                if i == 0 {
                    Tensor::zeros(2usize)
                } else {
                    Tensor::zeros(3usize)
                }
            })
            .collect();
        assert_eq!(
            krum.aggregate(&bad).unwrap_err(),
            AggregationError::HeterogeneousShapes
        );
    }
}
