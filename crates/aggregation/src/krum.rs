//! Krum and Multi-Krum GARs (Blanchard et al., NeurIPS 2017).

use crate::{validate_inputs, AggregationError, AggregationResult, Gar};
use garfield_tensor::{squared_l2_distance, Tensor};

/// Computes each input's Krum score: the sum of its squared distances to its
/// `n - f - 2` closest neighbours.
pub(crate) fn krum_scores(inputs: &[Tensor], f: usize) -> Vec<f32> {
    let n = inputs.len();
    // Pairwise squared distances.
    let mut dist = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = squared_l2_distance(&inputs[i], &inputs[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }
    let neighbours = n.saturating_sub(f + 2).max(1);
    (0..n)
        .map(|i| {
            let mut row: Vec<f32> = (0..n)
                .filter(|&j| j != i)
                .map(|j| dist[i * n + j])
                .collect();
            row.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            row.iter().take(neighbours).sum()
        })
        .collect()
}

/// Returns the indices of the `m` smallest-scoring inputs, in ascending score order.
pub(crate) fn smallest_scores(scores: &[f32], m: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(m);
    idx
}

/// Krum: selects the single gradient with the smallest score.
///
/// Requires `n ≥ 2f + 3`. Complexity `O(n² d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Krum {
    n: usize,
    f: usize,
}

impl Krum {
    /// Creates a Krum rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 2f + 3`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 2 * f + 3 {
            return Err(AggregationError::ResilienceViolated {
                rule: "krum",
                n,
                f,
                requirement: "n >= 2f + 3",
            });
        }
        Ok(Krum { n, f })
    }

    /// Returns the index of the gradient Krum would select.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate`].
    pub fn select_index(&self, inputs: &[Tensor]) -> AggregationResult<usize> {
        validate_inputs(inputs, self.n)?;
        let scores = krum_scores(inputs, self.f);
        Ok(smallest_scores(&scores, 1)[0])
    }
}

impl Gar for Krum {
    fn name(&self) -> &'static str {
        "krum"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate(&self, inputs: &[Tensor]) -> AggregationResult<Tensor> {
        let idx = self.select_index(inputs)?;
        Ok(inputs[idx].clone())
    }
}

/// Multi-Krum: averages the `n - f - 2` smallest-scoring gradients.
///
/// This is the variant AggregaThor and the paper's MSMW synchronous setup use;
/// it converges faster than Krum because it keeps more honest gradients.
/// Requires `n ≥ 2f + 3`. Complexity `O(n² d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiKrum {
    n: usize,
    f: usize,
    m: usize,
}

impl MultiKrum {
    /// Creates a Multi-Krum rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// The selection-set size defaults to `n - f - 2`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 2f + 3`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 2 * f + 3 {
            return Err(AggregationError::ResilienceViolated {
                rule: "multi-krum",
                n,
                f,
                requirement: "n >= 2f + 3",
            });
        }
        Ok(MultiKrum { n, f, m: n - f - 2 })
    }

    /// Number of gradients averaged by the selection phase.
    pub fn selection_size(&self) -> usize {
        self.m
    }

    /// Returns the indices of the gradients Multi-Krum selects, best first.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate`].
    pub fn select_indices(&self, inputs: &[Tensor]) -> AggregationResult<Vec<usize>> {
        validate_inputs(inputs, self.n)?;
        let scores = krum_scores(inputs, self.f);
        Ok(smallest_scores(&scores, self.m))
    }
}

impl Gar for MultiKrum {
    fn name(&self) -> &'static str {
        "multi-krum"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate(&self, inputs: &[Tensor]) -> AggregationResult<Tensor> {
        let selected = self.select_indices(inputs)?;
        let mut acc = Tensor::zeros(inputs[0].shape().clone());
        for &i in &selected {
            acc.add_assign_checked(&inputs[i])
                .expect("shapes validated");
        }
        acc.scale_inplace(1.0 / selected.len() as f32);
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::TensorRng;

    fn honest_cluster(n: usize, d: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from(seed);
        (0..n)
            .map(|_| {
                let noise = rng.normal_tensor(d).scale(0.1);
                Tensor::ones(d).try_add(&noise).unwrap()
            })
            .collect()
    }

    #[test]
    fn requirement_is_2f_plus_3() {
        assert!(Krum::new(5, 1).is_ok());
        assert!(Krum::new(4, 1).is_err());
        assert!(MultiKrum::new(9, 3).is_ok());
        assert!(MultiKrum::new(8, 3).is_err());
    }

    #[test]
    fn krum_selects_an_honest_gradient_under_attack() {
        let mut inputs = honest_cluster(4, 8, 1);
        inputs.push(Tensor::full(8usize, 1e6)); // Byzantine outlier
        let krum = Krum::new(5, 1).unwrap();
        let idx = krum.select_index(&inputs).unwrap();
        assert!(idx < 4, "Krum selected the Byzantine input");
        let out = krum.aggregate(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| v.abs() < 10.0));
    }

    #[test]
    fn krum_output_is_one_of_the_inputs() {
        let inputs = honest_cluster(5, 4, 2);
        let krum = Krum::new(5, 1).unwrap();
        let out = krum.aggregate(&inputs).unwrap();
        assert!(inputs.iter().any(|t| t == &out));
    }

    #[test]
    fn multi_krum_selection_size_and_robustness() {
        let mut inputs = honest_cluster(6, 8, 3);
        inputs.push(Tensor::full(8usize, -1e6));
        let mk = MultiKrum::new(7, 1).unwrap();
        assert_eq!(mk.selection_size(), 4);
        let selected = mk.select_indices(&inputs).unwrap();
        assert_eq!(selected.len(), 4);
        assert!(
            !selected.contains(&6),
            "Multi-Krum kept the Byzantine input"
        );
        let out = mk.aggregate(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| (0.0..2.0).contains(&v)));
    }

    #[test]
    fn multi_krum_without_byzantine_inputs_is_close_to_the_mean() {
        let inputs = honest_cluster(7, 16, 4);
        let mk = MultiKrum::new(7, 1).unwrap();
        let out = mk.aggregate(&inputs).unwrap();
        let mean = out.mean();
        assert!((mean - 1.0).abs() < 0.2, "mean of selection {mean}");
    }

    #[test]
    fn scores_are_permutation_consistent() {
        let inputs = honest_cluster(5, 4, 5);
        let scores = krum_scores(&inputs, 1);
        let mut reversed: Vec<Tensor> = inputs.clone();
        reversed.reverse();
        let mut scores_rev = krum_scores(&reversed, 1);
        scores_rev.reverse();
        for (a, b) in scores.iter().zip(scores_rev.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn validation_errors_propagate() {
        let krum = Krum::new(5, 1).unwrap();
        assert!(krum.aggregate(&[]).is_err());
        let bad: Vec<Tensor> = (0..5)
            .map(|i| {
                if i == 0 {
                    Tensor::zeros(2usize)
                } else {
                    Tensor::zeros(3usize)
                }
            })
            .collect();
        assert_eq!(
            krum.aggregate(&bad).unwrap_err(),
            AggregationError::HeterogeneousShapes
        );
    }
}
