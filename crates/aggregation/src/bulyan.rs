//! Bulyan GAR (El Mhamdi et al., ICML 2018).

use crate::engine::{bulyan_select_cached, COLUMN_TILE};
use crate::gar::{fill_distance_profile, fill_norm_profile};
use crate::{
    validate_views, AggregationError, AggregationResult, DistanceCache, Engine, Gar,
    SelectionOutcome, SelectionScratch,
};
use garfield_tensor::{total_order_key_f32, total_order_unkey_f32, GradientView, Tensor};

/// Bulyan of Multi-Krum.
///
/// Bulyan proceeds in two phases, matching §3.1 of the paper:
///
/// 1. **Selection**: iterate a Byzantine-resilient GAR (Multi-Krum here)
///    `k = n - 2f` times; at each iteration the selected gradient is moved
///    from the candidate pool into the selection set.
/// 2. **Aggregation**: for every coordinate, take the `k' = k - 2f` values of
///    the selection set closest to the selection set's coordinate-wise median
///    and average them.
///
/// The per-coordinate trimming is what lets Bulyan sustain high-dimensional
/// models against the "hidden vulnerability" attack. Requires `n ≥ 4f + 3`.
///
/// The selection loop runs on the shared [`DistanceCache`]: distances are
/// computed once (`O(n² d)`, thread-chunked) and each repeated-Krum round is
/// an incremental score update over pre-sorted neighbour lists — the old
/// implementation cloned the full candidate pool and re-ran Krum from raw
/// tensors every round. Phase 2 is chunked across threads by coordinate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bulyan {
    n: usize,
    f: usize,
}

impl Bulyan {
    /// Creates a Bulyan rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 4f + 3`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 4 * f + 3 {
            return Err(AggregationError::ResilienceViolated {
                rule: "bulyan",
                n,
                f,
                requirement: "n >= 4f + 3",
            });
        }
        Ok(Bulyan { n, f })
    }

    /// Size of the selection set produced by the first phase (`n - 2f`).
    pub fn selection_size(&self) -> usize {
        self.n - 2 * self.f
    }

    /// Number of values averaged per coordinate in the second phase
    /// (`selection_size - 2f`, at least 1).
    pub fn trimmed_size(&self) -> usize {
        self.selection_size().saturating_sub(2 * self.f).max(1)
    }

    /// Zero-copy selection phase: the chosen input indices, in selection
    /// order.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate_views`].
    pub fn select_indices_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Vec<usize>> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        let mut selected = Vec::with_capacity(self.selection_size());
        self.select_cached(&cache, &mut scratch, &mut selected);
        Ok(selected)
    }

    /// Allocation-free selection over a prebuilt cache (steady state): the
    /// selected indices are written into `selected` in selection order.
    pub fn select_cached(
        &self,
        cache: &DistanceCache,
        scratch: &mut SelectionScratch,
        selected: &mut Vec<usize>,
    ) {
        bulyan_select_cached(cache, self.f, self.selection_size(), scratch, selected);
    }

    /// Phase 2 over an already-selected set: per-coordinate trimmed average
    /// around the selection set's median, chunked across threads by
    /// coordinate range. Each chunk owns a private column buffer; every
    /// coordinate is computed with the same scalar sequence on any engine.
    ///
    /// The column is processed on order-preserving integer keys
    /// (`total_order_key_f32` — the workspace-wide total order, so a NaN
    /// coordinate lands in the same trailing position here as in every other
    /// GAR sort): one native `u32` sort gives the median at the middle index,
    /// and because "the β values closest to the median" are always a
    /// *contiguous window* of the sorted column, the trim is a β−1-step
    /// two-pointer expansion around the median instead of a second selection
    /// pass. Candidate distances `|v − m|` are non-negative (or NaN), so
    /// comparing their raw bits IS the total order: NaN distances (from NaN
    /// coordinates, or ∞−∞) lose every comparison until only they remain,
    /// exactly where the old `sort_by(total_cmp)` reference placed them. Ties
    /// pick the left (smaller-key) candidate — deterministic on every engine.
    /// The sum accumulates in the expansion order, i.e. ascending `|v − m|`,
    /// as the sort-based reference did.
    ///
    /// Coordinates are processed through an L2-resident transpose tile:
    /// gathering a column straight from `sel` multi-megabyte inputs is `sel`
    /// concurrent strided streams — more than the hardware prefetchers
    /// track — so each input's tile segment is first copied sequentially
    /// (prefetch-friendly) and the per-coordinate column then read
    /// contiguously from the tile. Every per-coordinate result is a pure
    /// function of the column *multiset*, so chunk/tile boundaries (which
    /// differ across engines) cannot change the output bits.
    fn trimmed_average(
        &self,
        inputs: &[GradientView<'_>],
        selected: &[usize],
        engine: &Engine,
    ) -> Tensor {
        let d = inputs[0].len();
        let beta = self.trimmed_size();
        let sel = selected.len();
        let mid = (sel - 1) / 2;
        let mut out = vec![0.0f32; d];
        engine.fill_chunks(&mut out, sel, |base, chunk| {
            let mut tile: Vec<u32> = vec![0; sel * COLUMN_TILE];
            let mut t0 = 0;
            while t0 < chunk.len() {
                let t_len = COLUMN_TILE.min(chunk.len() - t0);
                for (si, &i) in selected.iter().enumerate() {
                    let src = &inputs[i].data()[base + t0..base + t0 + t_len];
                    for (t, &v) in src.iter().enumerate() {
                        tile[t * sel + si] = total_order_key_f32(v);
                    }
                }
                for (t, slot) in chunk[t0..t0 + t_len].iter_mut().enumerate() {
                    let col = &mut tile[t * sel..t * sel + sel];
                    col.sort_unstable();
                    let m = total_order_unkey_f32(col[mid]);
                    let mut lo = mid;
                    let mut hi = mid;
                    let mut sum = m;
                    for _ in 1..beta {
                        let l_bits = if lo > 0 {
                            (total_order_unkey_f32(col[lo - 1]) - m).abs().to_bits()
                        } else {
                            u32::MAX
                        };
                        let r_bits = if hi + 1 < sel {
                            (total_order_unkey_f32(col[hi + 1]) - m).abs().to_bits()
                        } else {
                            u32::MAX
                        };
                        if l_bits <= r_bits {
                            lo -= 1;
                            sum += total_order_unkey_f32(col[lo]);
                        } else {
                            hi += 1;
                            sum += total_order_unkey_f32(col[hi]);
                        }
                    }
                    *slot = sum / beta as f32;
                }
                t0 += t_len;
            }
        });
        Tensor::from(out)
    }
}

impl Gar for Bulyan {
    fn name(&self) -> &'static str {
        "bulyan"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        let selected = self.select_indices_views(inputs, engine)?;
        Ok(self.trimmed_average(inputs, &selected, engine))
    }

    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let mut scratch = SelectionScratch::new();
        outcome.selected.clear();
        self.select_cached(&cache, &mut scratch, &mut outcome.selected);
        fill_distance_profile(&cache, &outcome.selected, &mut outcome.distance);
        fill_norm_profile(inputs, &mut outcome.norm);
        Ok(self.trimmed_average(inputs, &outcome.selected, engine))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::TensorRng;

    fn honest_cluster(n: usize, d: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from(seed);
        (0..n)
            .map(|_| {
                Tensor::ones(d)
                    .try_add(&rng.normal_tensor(d).scale(0.1))
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn requirement_is_4f_plus_3() {
        assert!(Bulyan::new(7, 1).is_ok());
        assert!(Bulyan::new(6, 1).is_err());
        assert!(Bulyan::new(15, 3).is_ok());
        assert!(Bulyan::new(14, 3).is_err());
    }

    #[test]
    fn selection_and_trim_sizes() {
        let b = Bulyan::new(11, 2).unwrap();
        assert_eq!(b.selection_size(), 7);
        assert_eq!(b.trimmed_size(), 3);
    }

    #[test]
    fn resists_large_outliers() {
        let mut inputs = honest_cluster(6, 16, 1);
        inputs.push(Tensor::full(16usize, 1e8));
        let b = Bulyan::new(7, 1).unwrap();
        let out = b.aggregate(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| (0.0..2.0).contains(&v)), "{out}");
    }

    #[test]
    fn resists_the_single_coordinate_attack() {
        // The "hidden vulnerability": a Byzantine input that looks honest in
        // every coordinate except one, where it is far off. Bulyan's
        // coordinate-wise trimming must suppress that coordinate.
        let mut inputs = honest_cluster(6, 8, 2);
        let mut sneaky = Tensor::ones(8usize);
        sneaky.set(3, 1e6).unwrap();
        inputs.push(sneaky);
        let b = Bulyan::new(7, 1).unwrap();
        let out = b.aggregate(&inputs).unwrap();
        assert!(
            out.data()[3] < 10.0,
            "coordinate attack leaked through: {}",
            out.data()[3]
        );
    }

    #[test]
    fn output_without_byzantine_inputs_tracks_the_mean() {
        let inputs = honest_cluster(7, 32, 3);
        let b = Bulyan::new(7, 1).unwrap();
        let out = b.aggregate(&inputs).unwrap();
        assert!((out.mean() - 1.0).abs() < 0.2);
    }

    #[test]
    fn output_stays_within_per_coordinate_input_range() {
        let mut rng = TensorRng::seed_from(8);
        let inputs: Vec<Tensor> = (0..7).map(|_| rng.normal_tensor(5usize)).collect();
        let b = Bulyan::new(7, 1).unwrap();
        let out = b.aggregate(&inputs).unwrap();
        for c in 0..5 {
            let col: Vec<f32> = inputs.iter().map(|t| t.data()[c]).collect();
            let min = col.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(out.data()[c] >= min - 1e-5 && out.data()[c] <= max + 1e-5);
        }
    }

    #[test]
    fn selection_does_not_clone_the_pool_and_agrees_across_engines() {
        let inputs = honest_cluster(11, 24, 12);
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let b = Bulyan::new(11, 2).unwrap();
        let seq = b
            .select_indices_views(&views, &Engine::sequential())
            .unwrap();
        let par = b
            .select_indices_views(&views, &Engine::with_threads(4))
            .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq.len(), b.selection_size());
        // Selection returns distinct input indices.
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seq.len());
    }

    #[test]
    fn nan_column_is_trimmed_identically_on_every_engine() {
        // A Byzantine input that is honest everywhere except one coordinate,
        // which it sets to NaN. Phase 2 sorts that column through the shared
        // total-order comparator, so the trimmed window — and therefore the
        // output bits — must be identical between the sequential and the
        // parallel engine, and stable across repeated calls.
        let mut inputs = honest_cluster(7, 16, 21);
        let mut poisoned = Tensor::ones(16usize);
        poisoned.set(5, f32::NAN).unwrap();
        inputs.push(poisoned);
        // n = 8 won't satisfy 4f + 3 with the poisoned input counted in f;
        // drop one honest input to stay at n = 7, f = 1.
        inputs.remove(0);
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        let b = Bulyan::new(7, 1).unwrap();
        let seq = b.aggregate_views(&views, &Engine::sequential()).unwrap();
        let par = b.aggregate_views(&views, &Engine::with_threads(4)).unwrap();
        let seq_bits: Vec<u32> = seq.data().iter().map(|v| v.to_bits()).collect();
        let par_bits: Vec<u32> = par.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, par_bits, "NaN column scrambled across engines");
        let again = b.aggregate_views(&views, &Engine::sequential()).unwrap();
        let again_bits: Vec<u32> = again.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(seq_bits, again_bits, "NaN column order is unstable");
        // Every non-poisoned coordinate still aggregates to a finite value.
        for (c, v) in seq.data().iter().enumerate() {
            if c != 5 {
                assert!(v.is_finite(), "coordinate {c} became {v}");
            }
        }
    }

    #[test]
    fn validation_errors() {
        let b = Bulyan::new(7, 1).unwrap();
        assert!(b.aggregate(&[]).is_err());
        assert!(matches!(
            b.aggregate(&honest_cluster(6, 4, 5)),
            Err(AggregationError::WrongInputCount {
                expected: 7,
                got: 6
            })
        ));
    }
}
