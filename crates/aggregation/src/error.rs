//! Error types for gradient aggregation.

use std::fmt;

/// Result alias for aggregation operations.
pub type AggregationResult<T> = Result<T, AggregationError>;

/// Errors produced when constructing or invoking a GAR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregationError {
    /// The `(n, f)` pair violates the rule's Byzantine-resilience requirement.
    ResilienceViolated {
        /// Name of the rule.
        rule: &'static str,
        /// Total number of inputs the rule was configured for.
        n: usize,
        /// Declared maximum number of Byzantine inputs.
        f: usize,
        /// Human-readable requirement, e.g. `"n >= 2f + 3"`.
        requirement: &'static str,
    },
    /// `aggregate` was called with a different number of inputs than configured.
    WrongInputCount {
        /// Number of inputs the rule expects.
        expected: usize,
        /// Number of inputs received.
        got: usize,
    },
    /// The input tensors do not all share one shape.
    HeterogeneousShapes,
    /// `aggregate` was called with no inputs.
    EmptyInput,
    /// The requested GAR name is unknown.
    UnknownRule(String),
}

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregationError::ResilienceViolated {
                rule,
                n,
                f: byz,
                requirement,
            } => write!(
                f,
                "{rule} requires {requirement}, but was configured with n = {n}, f = {byz}"
            ),
            AggregationError::WrongInputCount { expected, got } => {
                write!(f, "expected {expected} input vectors, got {got}")
            }
            AggregationError::HeterogeneousShapes => {
                write!(f, "all input vectors must share the same shape")
            }
            AggregationError::EmptyInput => write!(f, "cannot aggregate an empty input set"),
            AggregationError::UnknownRule(name) => write!(f, "unknown aggregation rule '{name}'"),
        }
    }
}

impl std::error::Error for AggregationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let variants = vec![
            AggregationError::ResilienceViolated {
                rule: "krum",
                n: 3,
                f: 1,
                requirement: "n >= 2f + 3",
            },
            AggregationError::WrongInputCount {
                expected: 5,
                got: 3,
            },
            AggregationError::HeterogeneousShapes,
            AggregationError::EmptyInput,
            AggregationError::UnknownRule("x".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
