//! Coordinate-wise Median GAR and the branchless 3-element ordering primitive.

use crate::{validate_views, AggregationError, AggregationResult, Engine, Gar};
use garfield_tensor::{GradientView, Tensor};

/// Orders three values without data-dependent branching.
///
/// This mirrors the SIMT-friendly selection-instruction primitive of §4.3 of
/// the paper: the three comparisons are converted to integers and combined
/// arithmetically into the output indices, so a GPU warp executing it never
/// diverges. On the CPU it is used as the building block of the small-`n`
/// median path and is exercised directly by the micro-benchmarks.
pub fn sort3_branchless(v: [f32; 3]) -> [f32; 3] {
    let c = [
        usize::from(v[0] > v[1]),
        usize::from(v[0] > v[2]),
        usize::from(v[1] > v[2]),
    ];
    // Index of the smallest and largest element, computed arithmetically
    // (same spirit as the paper's formula built on the selection instruction).
    let i0 = (1 + c[0] + 2 * c[1] + c[2] - (c[1] ^ c[2])) / 2;
    let i1 = (4 - c[0] - 2 * c[1] - c[2] + (c[0] ^ c[1])) / 2;
    [v[i0], v[3 - i0 - i1], v[i1]]
}

/// The coordinate-wise median GAR (Xie et al., referenced as [55] in the paper).
///
/// Requires `n ≥ 2f + 1`. Complexity `O(n d)` in the best case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Median {
    n: usize,
    f: usize,
}

impl Median {
    /// Creates a Median rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 2f + 1`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 2 * f + 1 {
            return Err(AggregationError::ResilienceViolated {
                rule: "median",
                n,
                f,
                requirement: "n >= 2f + 1",
            });
        }
        Ok(Median { n, f })
    }
}

impl Gar for Median {
    fn name(&self) -> &'static str {
        "median"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        Ok(coordinate_wise_median_views(inputs, engine))
    }
}

/// Coordinate-wise median of a non-empty, equal-length set of views, chunked
/// across threads by coordinate range (each chunk owns private scratch;
/// every coordinate runs the same scalar kernel on any engine).
///
/// Columns are gathered as [`total_order_key_f32`] integer keys and the
/// median selected with native `u32` quickselect — the keying is a monotone
/// bijection of the workspace's `total_cmp_f32` order, so the selected
/// element (NaN placement included) is exactly what
/// `median_inplace`/`select_nth_unstable_by(total_cmp_f32)` would return,
/// without spending the whole coordinate budget on comparator calls.
///
/// Gathering goes through an L2-resident transpose tile of
/// [`COLUMN_TILE`](crate::engine::COLUMN_TILE) coordinates: reading a column
/// straight from `n` multi-megabyte inputs is `n` concurrent strided
/// streams, so each input's tile segment is copied sequentially first and
/// the column then read contiguously. The median is a pure function of the
/// column multiset, so tile/chunk boundaries (which differ across engines)
/// cannot change the output bits.
pub(crate) fn coordinate_wise_median_views(inputs: &[GradientView<'_>], engine: &Engine) -> Tensor {
    use crate::engine::COLUMN_TILE;
    use garfield_tensor::{total_order_key_f32, total_order_unkey_f32};
    let d = inputs[0].len();
    let n = inputs.len();
    let mid = (n - 1) / 2;
    let mut out = vec![0.0f32; d];
    engine.fill_chunks(&mut out, n, |base, chunk| {
        if n == 3 {
            for (k, slot) in chunk.iter_mut().enumerate() {
                let coord = base + k;
                *slot = sort3_branchless([
                    inputs[0].data()[coord],
                    inputs[1].data()[coord],
                    inputs[2].data()[coord],
                ])[1];
            }
            return;
        }
        let mut tile: Vec<u32> = vec![0; n * COLUMN_TILE];
        let mut t0 = 0;
        while t0 < chunk.len() {
            let t_len = COLUMN_TILE.min(chunk.len() - t0);
            for (i, input) in inputs.iter().enumerate() {
                let src = &input.data()[base + t0..base + t0 + t_len];
                for (t, &v) in src.iter().enumerate() {
                    tile[t * n + i] = total_order_key_f32(v);
                }
            }
            for (t, slot) in chunk[t0..t0 + t_len].iter_mut().enumerate() {
                let col = &mut tile[t * n..t * n + n];
                let (_, m, _) = col.select_nth_unstable(mid);
                *slot = total_order_unkey_f32(*m);
            }
            t0 += t_len;
        }
    });
    Tensor::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort3_orders_every_permutation() {
        let perms = [
            [1.0, 2.0, 3.0],
            [1.0, 3.0, 2.0],
            [2.0, 1.0, 3.0],
            [2.0, 3.0, 1.0],
            [3.0, 1.0, 2.0],
            [3.0, 2.0, 1.0],
        ];
        for p in perms {
            assert_eq!(sort3_branchless(p), [1.0, 2.0, 3.0], "failed on {p:?}");
        }
    }

    #[test]
    fn sort3_handles_duplicates() {
        assert_eq!(sort3_branchless([2.0, 2.0, 1.0]), [1.0, 2.0, 2.0]);
        assert_eq!(sort3_branchless([5.0, 5.0, 5.0]), [5.0, 5.0, 5.0]);
        assert_eq!(sort3_branchless([1.0, 2.0, 2.0]), [1.0, 2.0, 2.0]);
    }

    #[test]
    fn requirement_is_2f_plus_1() {
        assert!(Median::new(3, 1).is_ok());
        assert!(Median::new(2, 1).is_err());
        assert!(Median::new(7, 3).is_ok());
        assert!(Median::new(6, 3).is_err());
    }

    #[test]
    fn median_of_odd_inputs_is_exact() {
        let median = Median::new(5, 2).unwrap();
        let inputs: Vec<Tensor> = [5.0, 1.0, 3.0, 2.0, 4.0]
            .iter()
            .map(|&v| Tensor::from_slice(&[v, -v]))
            .collect();
        let out = median.aggregate(&inputs).unwrap();
        assert_eq!(out.data(), &[3.0, -3.0]);
    }

    #[test]
    fn median_ignores_f_extreme_outliers() {
        let median = Median::new(5, 2).unwrap();
        let mut inputs: Vec<Tensor> = vec![
            Tensor::from_slice(&[1.0]),
            Tensor::from_slice(&[1.1]),
            Tensor::from_slice(&[0.9]),
        ];
        inputs.push(Tensor::from_slice(&[1e9]));
        inputs.push(Tensor::from_slice(&[-1e9]));
        let out = median.aggregate(&inputs).unwrap();
        assert!((0.9..=1.1).contains(&out.data()[0]));
    }

    #[test]
    fn median_output_is_within_input_range_per_coordinate() {
        let median = Median::new(3, 1).unwrap();
        let inputs = vec![
            Tensor::from_slice(&[1.0, -5.0, 2.0]),
            Tensor::from_slice(&[2.0, 0.0, 8.0]),
            Tensor::from_slice(&[3.0, 5.0, -4.0]),
        ];
        let out = median.aggregate(&inputs).unwrap();
        for (c, &v) in out.data().iter().enumerate() {
            let col: Vec<f32> = inputs.iter().map(|t| t.data()[c]).collect();
            let min = col.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(v >= min && v <= max);
        }
    }

    #[test]
    fn wrong_input_count_is_rejected() {
        let median = Median::new(3, 1).unwrap();
        let two = vec![Tensor::from_slice(&[1.0]), Tensor::from_slice(&[2.0])];
        assert!(matches!(
            median.aggregate(&two),
            Err(AggregationError::WrongInputCount {
                expected: 3,
                got: 2
            })
        ));
    }
}
