//! Speculative fast-path aggregation (arXiv:1911.07537).
//!
//! The robust GARs pay their full `O(n² d)` cost every round even when nobody
//! is attacking. [`SpeculativeGar`] bets on the common case instead: each
//! round runs the cheap average kernel plus a cheap consistency check over
//! the same inputs, and the first time the check trips it **permanently**
//! yields to the configured robust fallback rule — a sticky latch, so an
//! adversary cannot alternate between poisoned and clean rounds to stay
//! under the radar.
//!
//! Determinism is the contract that makes speculation safe to reason about:
//!
//! * the fast path produces *exactly* the bits of
//!   [`Average`](crate::Average): the average half of the fused sweep
//!   ([`fused_average_sweep`]) accumulates each coordinate in the same
//!   order as [`average_views`](crate::average_views), so a run in which
//!   the check never trips is **bit-identical** to a vanilla run;
//! * on suspicion the round is replayed through the fallback rule **on the
//!   same inputs**, so from the fallback round onward the run is
//!   **bit-identical** to a run of the pure robust rule;
//! * the check is deterministic in the inputs alone — the norms come from
//!   the fused kernel's fixed tile grid (engine-independent by
//!   construction) and the sampled channels are a fixed sequential scalar
//!   pass over exact copies of the sampled values, no RNG — so sequential
//!   and parallel engines, and the simulated and live substrates, all make
//!   the same trip decision.
//!
//! At large `d` everything here is memory-bound, which is why the average,
//! the norm channel, and the sample gather share one fused sweep
//! ([`fused_average_sweep`]) instead of three passes: the fast path reads
//! the `n·d` gradient payload once per round — and samples it while each
//! tile is still cache-hot — where the robust rules read it `O(n)` times.
//!
//! The check watches four cheap channels, each scale-free (ratios against
//! the per-round median, so no absolute threshold needs tuning per model):
//!
//! 1. **magnitude** — any non-finite squared norm, or a squared norm more
//!    than [`NORM_RATIO`]× above (or below) the median, trips. Catches
//!    dropped/zeroed gradients and large-variance noise injection.
//! 2. **deviation** — on a deterministic stride sample of at most
//!    [`SAMPLE_TARGET`] coordinates, an input whose squared deviation from
//!    the coordinate-wise mean exceeds [`DEV_RATIO`]× the median deviation
//!    trips. Catches partial drops and other off-cluster payloads.
//! 3. **direction** — an input whose inner product with the coordinate-wise
//!    mean falls below `-DOT_MARGIN×` the median inner product trips.
//!    Catches the reflection family (sign flip, fall-of-empires) whose
//!    norms and deviations can hide inside the honest envelope. The channel
//!    disarms itself when the consensus direction is too weak relative to
//!    the honest spread for the sign of an inner product to mean anything
//!    (`mean²·S ≤ 16·median deviation`), so noise-dominated late rounds
//!    cannot false-trip it.
//! 4. **coordinated shift** — an input that lands on the *same side* of the
//!    coordinate-wise mean in at least [`SIGN_FRAC`] of the sampled
//!    coordinates trips. Honest gradients scatter around the mean with
//!    per-coordinate signs near 50/50; a little-is-enough payload shifts
//!    *every* coordinate by `-z·σ_j` (a positive scale times a positive
//!    spread), so its deviation sign is uniform — the one signature the
//!    attack cannot randomize away without losing its bias. The channel
//!    disarms below [`SIGN_MIN_COORDS`] decided coordinates, where a
//!    uniform sign can happen by chance.
//! 5. **zero excess** — an input whose fraction of *exactly zero* sampled
//!    coordinates exceeds the round's median zero fraction by more than
//!    [`ZERO_EXCESS`] trips. Dense honest gradients only carry structural
//!    zeros (dead units), which every replica shares and the median
//!    subtracts out; a partial-drop payload zeroes coordinates the other
//!    inputs disagree on, a shape that keeps its norm, deviation and
//!    direction all inside the honest envelope. (Models with legitimately
//!    batch-sparse gradients — per-row embedding updates — would need this
//!    margin widened.)

use crate::engine::{fused_average_sweep, FusedSweep};
use crate::{validate_views, AggregationResult, Engine, Gar, SelectionOutcome};
use garfield_tensor::{GradientView, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Trip when an input's squared norm strays this factor from the median.
pub const NORM_RATIO: f64 = 16.0;

/// Trip when an input's sampled squared deviation from the coordinate-wise
/// mean exceeds this factor times the median deviation.
pub const DEV_RATIO: f64 = 8.0;

/// Trip when an input's inner product with the coordinate-wise mean falls
/// below `-DOT_MARGIN` times the median inner product. The margin only has
/// to absorb rounding, not honest spread: while the channel's arming gate
/// holds, an honest inner product sits many standard deviations above zero.
pub const DOT_MARGIN: f64 = 0.1;

/// Trip when an input's exact-zero fraction exceeds the round's median zero
/// fraction by more than this margin.
pub const ZERO_EXCESS: f64 = 0.25;

/// Trip when an input sits on one side of the coordinate-wise mean in at
/// least this fraction of the sampled coordinates that decided a side.
pub const SIGN_FRAC: f64 = 0.98;

/// The coordinated-shift channel disarms below this many decided
/// coordinates, where a uniform deviation sign can happen by chance.
pub const SIGN_MIN_COORDS: usize = 24;

/// Upper bound on the number of coordinates the deviation/direction channels
/// sample (a deterministic stride over the gradient).
pub const SAMPLE_TARGET: usize = 4096;

/// The speculative rule: average fast path, suspicion-gated robust fallback.
///
/// Built by [`build_gar`](crate::build_gar) from the composite
/// [`GarKind::Speculative`](crate::GarKind::Speculative) shape
/// (`"speculative(<fallback>)"`).
pub struct SpeculativeGar {
    n: usize,
    f: usize,
    fallback: Box<dyn Gar>,
    /// Sticky latch: once the check trips, every later round takes the
    /// fallback path. Relaxed ordering suffices — rounds are sequential per
    /// server, and a racing reader only delays the switch by one fast round
    /// that the check re-validates anyway.
    tripped: AtomicBool,
    fallbacks: garfield_obs::Counter,
    fast_seconds: garfield_obs::Histogram,
}

impl SpeculativeGar {
    /// Wraps an already-validated fallback rule.
    pub(crate) fn new(fallback: Box<dyn Gar>, n: usize, f: usize) -> Self {
        SpeculativeGar {
            n,
            f,
            fallback,
            tripped: AtomicBool::new(false),
            fallbacks: garfield_obs::metrics::counter(
                "garfield_speculation_fallback_total",
                "Rounds in which the speculative check tripped and the robust fallback ran.",
                &[],
            ),
            fast_seconds: garfield_obs::metrics::histogram(
                "garfield_speculation_fast_seconds",
                "Wall time of speculative fast-path aggregations (check + average).",
                &[],
            ),
        }
    }

    fn trip(&self) {
        if !self.tripped.swap(true, Ordering::Relaxed) {
            self.fallbacks.inc();
        }
    }

    /// The consistency check. `true` means at least one input looks
    /// Byzantine and the round must be replayed through the fallback.
    ///
    /// Consumes the [`FusedSweep`] the fast path already computed: the norm
    /// channel reads the sweep's fixed-tile squared norms and channels 2–5
    /// walk its compact sample gather in a fixed sequential `f64` scalar
    /// pass — both engine-independent, so the trip decision is too.
    fn suspicious(&self, sweep: &FusedSweep) -> bool {
        let n = sweep.square_norms.len();
        if n < 2 || sweep.samples.is_empty() {
            return false;
        }
        let norms = &sweep.square_norms;

        // Channel 1: magnitude band around the median squared norm.
        if norms.iter().any(|x| !x.is_finite()) {
            return true;
        }
        let med_norm = median(norms);
        let max_norm = norms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_norm = norms.iter().cloned().fold(f64::INFINITY, f64::min);
        if max_norm > NORM_RATIO * med_norm || min_norm * NORM_RATIO < med_norm {
            return true;
        }

        // Channels 2–5 over the sampled coordinates (one gathered row of
        // all n inputs per sampled coordinate, ascending).
        let mut dev = vec![0.0f64; n];
        let mut dot = vec![0.0f64; n];
        let mut below = vec![0usize; n];
        let mut above = vec![0usize; n];
        let mut zeros = vec![0usize; n];
        let mut mean_sq = 0.0f64;
        let mut sampled = 0usize;
        for row in sweep.samples.chunks_exact(n) {
            let mut m = 0.0f64;
            for &x in row {
                m += f64::from(x);
            }
            m /= n as f64;
            mean_sq += m * m;
            for (i, &raw) in row.iter().enumerate() {
                let x = f64::from(raw);
                let e = x - m;
                dev[i] += e * e;
                dot[i] += x * m;
                if e < 0.0 {
                    below[i] += 1;
                } else if e > 0.0 {
                    above[i] += 1;
                }
                if x == 0.0 {
                    zeros[i] += 1;
                }
            }
            sampled += 1;
        }

        let med_dev = median(&dev);
        let max_dev = dev.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if max_dev > DEV_RATIO * med_dev {
            return true;
        }

        // Channel 4: a deviation whose sign is (near-)uniform across the
        // sample is a coordinated shift, not honest scatter.
        for i in 0..n {
            let decided = below[i] + above[i];
            if decided >= SIGN_MIN_COORDS
                && below[i].max(above[i]) as f64 >= SIGN_FRAC * decided as f64
            {
                return true;
            }
        }

        // Channel 5: zeros the other inputs disagree on (median-relative,
        // so shared structural zeros don't count against anyone).
        let zero_fracs: Vec<f64> = zeros.iter().map(|&z| z as f64 / sampled as f64).collect();
        let med_zero = median(&zero_fracs);
        if zero_fracs.iter().any(|&z| z > med_zero + ZERO_EXCESS) {
            return true;
        }

        // The direction channel only means something while the consensus
        // direction stands out of the honest spread (see module docs).
        let med_dot = median(&dot);
        if med_dot > 0.0 && mean_sq * sampled as f64 > 16.0 * med_dev {
            let min_dot = dot.iter().cloned().fold(f64::INFINITY, f64::min);
            if min_dot < -DOT_MARGIN * med_dot {
                return true;
            }
        }
        false
    }
}

/// The deterministic sample stride: at most [`SAMPLE_TARGET`] coordinates,
/// evenly spaced from coordinate 0.
fn sample_stride(inputs: &[GradientView<'_>]) -> usize {
    (inputs[0].len() / SAMPLE_TARGET).max(1)
}

/// Upper median (index `len / 2`) by total order; `values` must be finite.
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

impl Gar for SpeculativeGar {
    fn name(&self) -> &'static str {
        "speculative"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        if self.tripped.load(Ordering::Relaxed) {
            return self.fallback.aggregate_views(inputs, engine);
        }
        validate_views(inputs, self.n)?;
        let start = garfield_obs::enabled().then(Instant::now);
        // One fused sweep yields the speculative output *and* everything the
        // check consumes; on a trip the average is discarded — wasted once,
        // since the latch short-circuits every later round.
        let sweep = fused_average_sweep(inputs, engine, sample_stride(inputs));
        if self.suspicious(&sweep) {
            self.trip();
            return self.fallback.aggregate_views(inputs, engine);
        }
        let out = Tensor::from(sweep.average);
        if let Some(t) = start {
            self.fast_seconds.observe_duration(t.elapsed());
        }
        Ok(out)
    }

    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        if self.tripped.load(Ordering::Relaxed) {
            return self
                .fallback
                .aggregate_views_observed(inputs, engine, outcome);
        }
        validate_views(inputs, self.n)?;
        let start = garfield_obs::enabled().then(Instant::now);
        let sweep = fused_average_sweep(inputs, engine, sample_stride(inputs));
        if self.suspicious(&sweep) {
            self.trip();
            return self
                .fallback
                .aggregate_views_observed(inputs, engine, outcome);
        }
        let out = Tensor::from(sweep.average);
        if let Some(t) = start {
            self.fast_seconds.observe_duration(t.elapsed());
        }
        // Identical to Average's observed path: everything selected, norms filled.
        outcome.fill_all_selected(inputs.len());
        crate::gar::fill_norm_profile(inputs, &mut outcome.norm);
        Ok(out)
    }

    fn fell_back(&self) -> Option<bool> {
        Some(self.tripped.load(Ordering::Relaxed))
    }

    /// The sticky-OR receiving end: a sibling shard's check tripped, so this
    /// replica latches onto the fallback exactly as if its own check had.
    fn force_fallback(&self) {
        self.trip();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::average_views;
    use crate::{build_gar, GarKind};
    use garfield_tensor::{Tensor, TensorRng};

    fn spec_kind(fallback: GarKind) -> GarKind {
        GarKind::Speculative {
            fallback: Box::new(fallback),
        }
    }

    /// A tight honest cluster: ones + small noise.
    fn honest_inputs(n: usize, d: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from(seed);
        (0..n)
            .map(|_| {
                Tensor::ones(d)
                    .try_add(&rng.normal_tensor(d).scale(0.05))
                    .unwrap()
            })
            .collect()
    }

    fn views(inputs: &[Tensor]) -> Vec<GradientView<'_>> {
        inputs.iter().map(GradientView::from).collect()
    }

    #[test]
    fn fault_free_fast_path_is_bit_identical_to_average() {
        let n = 9;
        let inputs = honest_inputs(n, 64, 11);
        let v = views(&inputs);
        for engine in [Engine::sequential(), Engine::with_threads(4)] {
            let spec = build_gar(&spec_kind(GarKind::MultiKrum), n, 1).unwrap();
            let avg = build_gar(&GarKind::Average, n, 0).unwrap();
            let fast = spec.aggregate_views(&v, &engine).unwrap();
            let plain = avg.aggregate_views(&v, &engine).unwrap();
            let fast_bits: Vec<u32> = fast.data().iter().map(|x| x.to_bits()).collect();
            let plain_bits: Vec<u32> = plain.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(fast_bits, plain_bits);
            assert_eq!(spec.fell_back(), Some(false));
        }
    }

    #[test]
    fn sticky_latch_replays_through_the_fallback_forever() {
        let n = 9;
        let f = 1;
        let d = 64;
        let spec = build_gar(&spec_kind(GarKind::MultiKrum), n, f).unwrap();
        let robust = build_gar(&GarKind::MultiKrum, n, f).unwrap();
        let engine = Engine::sequential();

        // Round 0: attacked — must fall back, bit-identical to the pure rule.
        let mut attacked = honest_inputs(n - 1, d, 7);
        attacked.push(Tensor::full(d, 1e6));
        let va = views(&attacked);
        let out = spec.aggregate_views(&va, &engine).unwrap();
        let pure = robust.aggregate_views(&va, &engine).unwrap();
        assert_eq!(spec.fell_back(), Some(true));
        let out_bits: Vec<u32> = out.data().iter().map(|x| x.to_bits()).collect();
        let pure_bits: Vec<u32> = pure.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(out_bits, pure_bits);

        // Round 1: clean inputs, but the latch is sticky — still the fallback.
        let clean = honest_inputs(n, d, 8);
        let vc = views(&clean);
        let out = spec.aggregate_views(&vc, &engine).unwrap();
        let pure = robust.aggregate_views(&vc, &engine).unwrap();
        let out_bits: Vec<u32> = out.data().iter().map(|x| x.to_bits()).collect();
        let pure_bits: Vec<u32> = pure.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(out_bits, pure_bits);
        assert_eq!(spec.fell_back(), Some(true));
    }

    #[test]
    fn check_trips_on_the_classic_payload_shapes() {
        let n = 9;
        let d = 256;
        let engine = Engine::sequential();
        let base = honest_inputs(n - 1, d, 21);
        let mean = Tensor::from(average_views(&views(&base), &engine));
        let payloads: Vec<(&str, Tensor)> = vec![
            ("drop", Tensor::zeros(d)),
            ("random", {
                let mut rng = TensorRng::seed_from(4);
                rng.normal_tensor(d).scale(10.0)
            }),
            ("reversed", mean.scale(-100.0)),
            ("sign-flip", mean.scale(-1.0)),
            ("fall-of-empires", mean.scale(-1.1)),
            ("label-flip", mean.scale(-0.6)),
            // Little-is-enough with an omniscient view: a small uniform
            // shift below the honest mean, inside the norm/dev/dot envelope.
            (
                "little-is-enough",
                mean.try_add(&Tensor::full(d, -0.1)).unwrap(),
            ),
            ("partial-drop", {
                let mut t = mean.clone();
                for (i, x) in t.data_mut().iter_mut().enumerate() {
                    if i % 2 == 0 {
                        *x = 0.0;
                    }
                }
                t
            }),
            ("non-finite", Tensor::full(d, f32::NAN)),
        ];
        for (name, payload) in payloads {
            let spec = build_gar(&spec_kind(GarKind::MultiKrum), n, 1).unwrap();
            let mut inputs = base.clone();
            inputs.push(payload);
            spec.aggregate_views(&views(&inputs), &engine).unwrap();
            assert_eq!(spec.fell_back(), Some(true), "{name} payload not caught");
        }
    }

    #[test]
    fn check_does_not_trip_on_honest_spread() {
        let engine = Engine::sequential();
        for seed in 0..20u64 {
            let n = 9;
            let inputs = honest_inputs(n, 128, 1000 + seed);
            let spec = build_gar(&spec_kind(GarKind::Median), n, 1).unwrap();
            spec.aggregate_views(&views(&inputs), &engine).unwrap();
            assert_eq!(spec.fell_back(), Some(false), "false trip at seed {seed}");
        }
    }

    #[test]
    fn observed_fast_path_matches_averages_observed_path() {
        let n = 7;
        let inputs = honest_inputs(n, 32, 3);
        let v = views(&inputs);
        let engine = Engine::sequential();
        let spec = build_gar(&spec_kind(GarKind::Median), n, 1).unwrap();
        let avg = build_gar(&GarKind::Average, n, 0).unwrap();
        let mut spec_out = SelectionOutcome::default();
        let mut avg_out = SelectionOutcome::default();
        let a = spec
            .aggregate_views_observed(&v, &engine, &mut spec_out)
            .unwrap();
        let b = avg
            .aggregate_views_observed(&v, &engine, &mut avg_out)
            .unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(spec_out, avg_out);
    }
}
