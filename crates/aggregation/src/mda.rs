//! MDA — Minimum-Diameter Averaging (Rousseeuw 1985, as used by the paper).

use crate::gar::{fill_distance_profile, fill_norm_profile};
use crate::{
    validate_inputs, validate_views, AggregationError, AggregationResult, DistanceCache, Engine,
    Gar, SelectionOutcome,
};
use garfield_tensor::{GradientView, Tensor};

/// Minimum-Diameter Averaging.
///
/// MDA enumerates every subset of size `n - f`, finds the one with the
/// smallest diameter (the maximum pairwise distance inside the subset) and
/// returns the average of that subset. Its worst-case cost is exponential in
/// `f` (`C(n, f)` subsets), which the paper's Fig. 3 discussion notes is only
/// visible for large `f`; the pairwise-distance matrix is computed once
/// (`O(n² d)`) and reused across subsets.
///
/// Requires `n ≥ 2f + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mda {
    n: usize,
    f: usize,
}

impl Mda {
    /// Creates an MDA rule for `n` inputs tolerating `f` Byzantine ones.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::ResilienceViolated`] unless `n ≥ 2f + 1`.
    pub fn new(n: usize, f: usize) -> AggregationResult<Self> {
        if n < 2 * f + 1 {
            return Err(AggregationError::ResilienceViolated {
                rule: "mda",
                n,
                f,
                requirement: "n >= 2f + 1",
            });
        }
        Ok(Mda { n, f })
    }

    /// Returns the indices of the minimum-diameter subset of size `n - f`.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate`].
    pub fn select_indices(&self, inputs: &[Tensor]) -> AggregationResult<Vec<usize>> {
        validate_inputs(inputs, self.n)?;
        let views: Vec<GradientView<'_>> = inputs.iter().map(GradientView::from).collect();
        self.select_indices_views(&views, &Engine::auto())
    }

    /// Zero-copy selection: the minimum-diameter subset over borrowed views.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`Gar::aggregate_views`].
    pub fn select_indices_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Vec<usize>> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        Ok(self.select_cached(&cache))
    }

    /// Minimum-diameter subset selection over a prebuilt distance cache.
    ///
    /// The `C(n, f)` subset enumeration itself is sequential (it is a tiny
    /// scan over cached scalars once the `O(n² d)` distance work is paid) and
    /// keeps the original incumbent-pruned lexicographic order, so every
    /// engine selects the same subset.
    pub fn select_cached(&self, cache: &DistanceCache) -> Vec<usize> {
        let n = self.n;
        let keep = n - self.f;
        let dist = |i: usize, j: usize| cache.get(i, j);

        let mut best: Option<(f32, Vec<usize>)> = None;
        let mut subset: Vec<usize> = (0..keep).collect();
        loop {
            // Diameter of the current subset.
            let mut diameter = 0.0f32;
            'outer: for a in 0..keep {
                for b in (a + 1)..keep {
                    let d = dist(subset[a], subset[b]);
                    if d > diameter {
                        diameter = d;
                        if let Some((best_d, _)) = &best {
                            if diameter >= *best_d {
                                break 'outer; // cannot beat the incumbent
                            }
                        }
                    }
                }
            }
            match &best {
                Some((best_d, _)) if diameter >= *best_d => {}
                _ => best = Some((diameter, subset.clone())),
            }

            // Advance to the next k-combination in lexicographic order.
            let mut i = keep;
            loop {
                if i == 0 {
                    return best.expect("at least one subset was evaluated").1;
                }
                i -= 1;
                if subset[i] != i + n - keep {
                    break;
                }
            }
            subset[i] += 1;
            for j in i + 1..keep {
                subset[j] = subset[j - 1] + 1;
            }
        }
    }
}

impl Gar for Mda {
    fn name(&self) -> &'static str {
        "mda"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn f(&self) -> usize {
        self.f
    }

    fn aggregate_views(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
    ) -> AggregationResult<Tensor> {
        let selected = self.select_indices_views(inputs, engine)?;
        let mut out = Vec::new();
        crate::engine::average_indices_into(inputs, &selected, engine, &mut out);
        Ok(Tensor::from(out))
    }

    fn aggregate_views_observed(
        &self,
        inputs: &[GradientView<'_>],
        engine: &Engine,
        outcome: &mut SelectionOutcome,
    ) -> AggregationResult<Tensor> {
        validate_views(inputs, self.n)?;
        let cache = DistanceCache::build(inputs, engine);
        let selected = self.select_cached(&cache);
        outcome.selected.clear();
        outcome.selected.extend_from_slice(&selected);
        fill_distance_profile(&cache, &outcome.selected, &mut outcome.distance);
        fill_norm_profile(inputs, &mut outcome.norm);
        let mut out = Vec::new();
        crate::engine::average_indices_into(inputs, &outcome.selected, engine, &mut out);
        Ok(Tensor::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garfield_tensor::TensorRng;

    #[test]
    fn requirement_is_2f_plus_1() {
        assert!(Mda::new(3, 1).is_ok());
        assert!(Mda::new(2, 1).is_err());
        assert!(Mda::new(7, 3).is_ok());
    }

    #[test]
    fn selects_the_tight_cluster_and_excludes_outliers() {
        let mut inputs: Vec<Tensor> = (0..4)
            .map(|i| Tensor::from_slice(&[1.0 + 0.01 * i as f32, 2.0]))
            .collect();
        inputs.push(Tensor::from_slice(&[100.0, -100.0]));
        let mda = Mda::new(5, 1).unwrap();
        let selected = mda.select_indices(&inputs).unwrap();
        assert_eq!(selected.len(), 4);
        assert!(!selected.contains(&4));
        let out = mda.aggregate(&inputs).unwrap();
        assert!((out.data()[0] - 1.015).abs() < 1e-3);
        assert!((out.data()[1] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn with_f_zero_mda_is_exactly_the_average() {
        let mut rng = TensorRng::seed_from(9);
        let inputs: Vec<Tensor> = (0..4).map(|_| rng.normal_tensor(6usize)).collect();
        let mda = Mda::new(4, 0).unwrap();
        let out = mda.aggregate(&inputs).unwrap();
        let mut avg = Tensor::zeros(6usize);
        for t in &inputs {
            avg.add_assign_checked(t).unwrap();
        }
        avg.scale_inplace(0.25);
        for (a, b) in out.iter().zip(avg.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn tolerates_f_byzantine_inputs_up_to_the_bound() {
        let mut rng = TensorRng::seed_from(10);
        let mut inputs: Vec<Tensor> = (0..5)
            .map(|_| {
                Tensor::ones(8usize)
                    .try_add(&rng.normal_tensor(8usize).scale(0.05))
                    .unwrap()
            })
            .collect();
        inputs.push(Tensor::full(8usize, 1e7));
        inputs.push(Tensor::full(8usize, -1e7));
        let mda = Mda::new(7, 2).unwrap();
        let out = mda.aggregate(&inputs).unwrap();
        assert!(out.data().iter().all(|&v| (0.5..1.5).contains(&v)), "{out}");
    }

    #[test]
    fn output_stays_in_convex_hull_of_honest_inputs_when_attack_fails() {
        // All inputs honest: the output must stay within the coordinate-wise
        // min/max envelope since it is an average of a subset.
        let mut rng = TensorRng::seed_from(11);
        let inputs: Vec<Tensor> = (0..5).map(|_| rng.normal_tensor(4usize)).collect();
        let mda = Mda::new(5, 1).unwrap();
        let out = mda.aggregate(&inputs).unwrap();
        for c in 0..4 {
            let col: Vec<f32> = inputs.iter().map(|t| t.data()[c]).collect();
            let min = col.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(out.data()[c] >= min - 1e-5 && out.data()[c] <= max + 1e-5);
        }
    }

    #[test]
    fn validation_errors() {
        let mda = Mda::new(3, 1).unwrap();
        assert!(mda.aggregate(&[]).is_err());
        assert!(mda
            .aggregate(&[Tensor::zeros(2usize), Tensor::zeros(2usize)])
            .is_err());
    }
}
