//! # garfield-aggregation
//!
//! Statistically robust gradient aggregation rules (GARs) from
//! *"Garfield: System Support for Byzantine Machine Learning"* (DSN 2021),
//! §3.1, behind the paper's uniform `init()` / `aggregate()` interface.
//!
//! Implemented rules:
//!
//! | Rule | Requirement | Complexity |
//! |------|-------------|------------|
//! | [`Average`] | none (not Byzantine-resilient) | `O(n d)` |
//! | [`Median`] | `n ≥ 2f + 1` | `O(n d)` best case |
//! | [`Krum`] / [`MultiKrum`] | `n ≥ 2f + 3` | `O(n² d)` |
//! | [`Mda`] | `n ≥ 2f + 1` | `O(C(n, f) + n² d)` |
//! | [`Bulyan`] | `n ≥ 4f + 3` | `O(n² d)` |
//!
//! All rules consume a slice of equally-shaped [`Tensor`]s (gradients *or*
//! models — the paper aggregates both) and produce one output tensor with the
//! statistical guarantees described in the paper.
//!
//! Under the hood every rule runs on the zero-copy [`engine`]: inputs are
//! borrowed [`GradientView`](garfield_tensor::GradientView)s (wire payloads,
//! tensor storage), the `O(n² d)` pairwise-distance matrix is computed once
//! into a shared [`DistanceCache`] — chunked across OS threads by the
//! [`Engine`] — and selection returns indices, so the only copy a rule makes
//! is its output. Sequential and parallel engines are bit-identical.
//!
//! The crate also ships the paper's `measure_variance.py` equivalent: a
//! [`variance::VarianceProbe`] that empirically checks the bounded-variance
//! condition each GAR needs.
//!
//! # Quick example
//!
//! ```rust
//! use garfield_aggregation::{Gar, GarKind, build_gar};
//! use garfield_tensor::Tensor;
//!
//! let gar = build_gar(&GarKind::Median, 5, 1).unwrap();
//! let inputs: Vec<Tensor> = (0..5).map(|i| Tensor::from_slice(&[i as f32])).collect();
//! let out = gar.aggregate(&inputs).unwrap();
//! assert_eq!(out.data(), &[2.0]);
//! ```
//!
//! [`Tensor`]: garfield_tensor::Tensor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod average;
mod bulyan;
pub mod engine;
mod error;
mod gar;
mod krum;
mod mda;
mod median;
mod speculative;
pub mod suspicion;
pub mod variance;

pub use average::Average;
pub use bulyan::Bulyan;
pub use engine::{
    average_and_square_norms, average_views, fused_average_sweep, gram_error_bound, DistanceCache,
    Engine, FusedSweep, SelectionScratch,
};
pub use error::{AggregationError, AggregationResult};
pub use gar::{build_gar, Gar, GarKind, SelectionOutcome};
pub use krum::{Krum, MultiKrum};
pub use mda::Mda;
pub use median::{sort3_branchless, Median};
pub use speculative::SpeculativeGar;
pub use suspicion::{PeerSuspicion, SuspicionLedger};
pub use variance::{VarianceProbe, VarianceReport, VarianceStep};

/// Validates that all inputs exist, share one shape, and match the expected count.
pub(crate) fn validate_inputs(
    inputs: &[garfield_tensor::Tensor],
    expected: usize,
) -> AggregationResult<()> {
    if inputs.is_empty() {
        return Err(AggregationError::EmptyInput);
    }
    if inputs.len() != expected {
        return Err(AggregationError::WrongInputCount {
            expected,
            got: inputs.len(),
        });
    }
    let shape = inputs[0].shape();
    if inputs.iter().any(|t| t.shape() != shape) {
        return Err(AggregationError::HeterogeneousShapes);
    }
    Ok(())
}

/// Validates that all views exist, share one length, and match the expected count.
pub(crate) fn validate_views(
    inputs: &[garfield_tensor::GradientView<'_>],
    expected: usize,
) -> AggregationResult<()> {
    if inputs.is_empty() {
        return Err(AggregationError::EmptyInput);
    }
    if inputs.len() != expected {
        return Err(AggregationError::WrongInputCount {
            expected,
            got: inputs.len(),
        });
    }
    let d = inputs[0].len();
    if inputs.iter().any(|v| v.len() != d) {
        return Err(AggregationError::HeterogeneousShapes);
    }
    Ok(())
}
