//! Property-based tests for the Byzantine-resilience invariants of every GAR.
//!
//! The key property (mirroring the theoretical guarantees of §3.1): with at
//! most `f` Byzantine inputs, the output of a Byzantine-resilient GAR stays
//! within (or very near) the envelope of the honest inputs, no matter what
//! the Byzantine vectors contain.

use garfield_aggregation::{build_gar, GarKind};
use garfield_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

/// Generates a cluster of `honest` similar vectors plus `byz` adversarial ones.
fn adversarial_setup(
    honest: usize,
    byz: usize,
    d: usize,
    seed: u64,
    byz_value: f32,
) -> (Vec<Tensor>, f32, f32) {
    let mut rng = TensorRng::seed_from(seed);
    let mut inputs: Vec<Tensor> = (0..honest)
        .map(|_| {
            Tensor::ones(d)
                .try_add(&rng.normal_tensor(d).scale(0.1))
                .unwrap()
        })
        .collect();
    let honest_min = inputs.iter().map(|t| t.min()).fold(f32::INFINITY, f32::min);
    let honest_max = inputs
        .iter()
        .map(|t| t.max())
        .fold(f32::NEG_INFINITY, f32::max);
    for _ in 0..byz {
        inputs.push(Tensor::full(d, byz_value));
    }
    (inputs, honest_min, honest_max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resilient_gars_bound_the_output_under_attack(
        f in 1usize..3,
        d in 1usize..24,
        seed in 0u64..10_000,
        byz_value in prop_oneof![Just(1e9f32), Just(-1e9f32), Just(1e4f32)],
    ) {
        for kind in [GarKind::Median, GarKind::Krum, GarKind::MultiKrum, GarKind::Mda, GarKind::Bulyan] {
            let n = kind.minimum_inputs(f).max(2 * f + 3);
            let honest = n - f;
            let (inputs, lo, hi) = adversarial_setup(honest, f, d, seed, byz_value);
            let gar = build_gar(&kind, n, f).unwrap();
            let out = gar.aggregate(&inputs).unwrap();
            // The output must stay within a small margin of the honest envelope.
            let margin = (hi - lo).abs() + 1.0;
            for &v in out.data() {
                prop_assert!(
                    v >= lo - margin && v <= hi + margin,
                    "{kind}: output coordinate {v} escaped honest range [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn gars_are_permutation_invariant(
        seed in 0u64..10_000,
        d in 1usize..16,
    ) {
        let f = 1usize;
        // Average, Median and Multi-Krum are exactly permutation invariant.
        // MDA and Bulyan break ties (equal diameters / equal Krum scores) by
        // input position, like the reference implementation — ties are generic
        // for MDA (several subsets can share the minimum diameter) — so for
        // them we only require the reordered output to stay inside the
        // per-coordinate input envelope.
        for kind in [GarKind::Average, GarKind::Median, GarKind::MultiKrum] {
            let n = kind.minimum_inputs(f).max(5);
            let mut rng = TensorRng::seed_from(seed);
            let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
            let gar = build_gar(&kind, n, f).unwrap();
            let out = gar.aggregate(&inputs).unwrap();
            let mut reversed = inputs.clone();
            reversed.reverse();
            let out_rev = gar.aggregate(&reversed).unwrap();
            for (a, b) in out.iter().zip(out_rev.iter()) {
                prop_assert!((a - b).abs() < 1e-3, "{kind} is not permutation invariant");
            }
        }
        for kind in [GarKind::Mda, GarKind::Bulyan] {
            let n = kind.minimum_inputs(f).max(5);
            let mut rng = TensorRng::seed_from(seed);
            let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
            let gar = build_gar(&kind, n, f).unwrap();
            let mut reversed = inputs.clone();
            reversed.reverse();
            for out in [gar.aggregate(&inputs).unwrap(), gar.aggregate(&reversed).unwrap()] {
                for c in 0..d {
                    let col: Vec<f32> = inputs.iter().map(|t| t.data()[c]).collect();
                    let min = col.iter().cloned().fold(f32::INFINITY, f32::min);
                    let max = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    prop_assert!(out.data()[c] >= min - 1e-5 && out.data()[c] <= max + 1e-5);
                }
            }
        }
    }

    #[test]
    fn identical_inputs_are_a_fixed_point(
        seed in 0u64..10_000,
        d in 1usize..32,
        f in 0usize..2,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let v = rng.normal_tensor(d);
        for kind in GarKind::all() {
            let n = kind.minimum_inputs(f).max(3);
            let inputs = vec![v.clone(); n];
            let gar = build_gar(&kind, n, f).unwrap();
            let out = gar.aggregate(&inputs).unwrap();
            for (a, b) in out.iter().zip(v.iter()) {
                prop_assert!((a - b).abs() < 1e-4, "{kind} moved a unanimous input");
            }
        }
    }

    #[test]
    fn average_is_linear_in_its_inputs(
        seed in 0u64..10_000,
        k in 0.1f32..5.0,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let inputs: Vec<Tensor> = (0..4).map(|_| rng.normal_tensor(8usize)).collect();
        let scaled: Vec<Tensor> = inputs.iter().map(|t| t.scale(k)).collect();
        let gar = build_gar(&GarKind::Average, 4, 0).unwrap();
        let base = gar.aggregate(&inputs).unwrap();
        let out = gar.aggregate(&scaled).unwrap();
        for (a, b) in out.iter().zip(base.iter()) {
            prop_assert!((a - k * b).abs() < 1e-3);
        }
    }

    #[test]
    fn median_output_per_coordinate_is_an_input_value_for_odd_n(
        seed in 0u64..10_000,
        d in 1usize..12,
    ) {
        let n = 5usize;
        let mut rng = TensorRng::seed_from(seed);
        let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
        let gar = build_gar(&GarKind::Median, n, 2).unwrap();
        let out = gar.aggregate(&inputs).unwrap();
        for c in 0..d {
            let v = out.data()[c];
            prop_assert!(
                inputs.iter().any(|t| (t.data()[c] - v).abs() < 1e-6),
                "median coordinate {c} is not one of the inputs"
            );
        }
    }

    #[test]
    fn krum_always_returns_one_of_its_inputs(seed in 0u64..10_000, d in 1usize..16) {
        let n = 6usize;
        let mut rng = TensorRng::seed_from(seed);
        let inputs: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
        let gar = build_gar(&GarKind::Krum, n, 1).unwrap();
        let out = gar.aggregate(&inputs).unwrap();
        prop_assert!(inputs.iter().any(|t| t == &out));
    }

    #[test]
    fn gar_kinds_round_trip_through_display_and_from_str(
        base in prop_oneof![
            Just(GarKind::Average),
            Just(GarKind::Median),
            Just(GarKind::Krum),
            Just(GarKind::MultiKrum),
            Just(GarKind::Mda),
            Just(GarKind::Bulyan),
        ],
        wrap in prop_oneof![
            Just(false),
            Just(true),
        ],
    ) {
        let kind = if wrap {
            GarKind::Speculative { fallback: Box::new(base.clone()) }
        } else {
            base
        };
        let text = kind.to_string();
        let parsed: GarKind = text.parse().unwrap();
        prop_assert_eq!(&parsed, &kind, "'{}' did not round-trip", text);
        // Parsing is case- and whitespace-tolerant; Display is canonical.
        let shouted: GarKind = text.to_uppercase().trim().parse().unwrap();
        prop_assert_eq!(&shouted, &kind);
        prop_assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn sort3_always_sorts(a in -1e6f32..1e6, b in -1e6f32..1e6, c in -1e6f32..1e6) {
        let sorted = garfield_aggregation::sort3_branchless([a, b, c]);
        prop_assert!(sorted[0] <= sorted[1] && sorted[1] <= sorted[2]);
        let mut expected = [a, b, c];
        expected.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(sorted, expected);
    }
}
