//! Regression test: steady-state GAR selection is allocation-free.
//!
//! The original implementations cloned tensors on the hot path — Bulyan
//! cloned its full candidate pool every selection round and Krum cloned its
//! winner — so selection cost included `O(n d)`–`O(n² d)` heap churn per
//! call. The engine rewrite returns indices over a shared [`DistanceCache`]
//! and reuses [`SelectionScratch`] buffers, so once the buffers are warm a
//! selection performs **zero** heap allocations. A counting global-allocator
//! shim asserts exactly that; any future clone sneaking back into the
//! selection loop fails this test.

use garfield_aggregation::{Bulyan, DistanceCache, Engine, Krum, MultiKrum, SelectionScratch};
use garfield_tensor::GradientView;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Forwards to the system allocator, counting every allocation (alloc,
/// alloc_zeroed, realloc) made while the gate is open.
///
/// The gate is *thread-local*, not a process-wide flag: the libtest harness
/// thread concurrently blocks in its result-channel `recv()`, and whether
/// that park path allocates depends on scheduling. A global gate
/// intermittently charged those harness allocations to the selection loop
/// (a rare-flake "allocated 2 times" failure); a thread-local gate counts
/// only the thread running the gated `work`, which is what this test is
/// actually asserting about. The `const` initializer keeps the TLS access
/// itself allocation-free, so it is safe to consult inside the allocator.
struct CountingAllocator;

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

fn gate_open() -> bool {
    COUNTING.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if gate_open() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if gate_open() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if gate_open() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `work` with this thread's counting gate open and returns how many
/// heap allocations it performed.
fn count_allocations(work: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.with(|gate| gate.set(true));
    work();
    COUNTING.with(|gate| gate.set(false));
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn payloads(n: usize, d: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..d)
                .map(|c| ((i * 131 + c * 17) as f32 * 0.01).sin())
                .collect()
        })
        .collect()
}

/// This file holds a single test on purpose: the counter is process-global,
/// and the default multi-threaded test runner would cross-count allocations
/// from sibling tests.
#[test]
fn steady_state_selection_performs_zero_heap_allocations() {
    let n = 11;
    let f = 2;
    let d = 64;
    let data = payloads(n, d);
    let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();
    // Selection must be allocation-free on the *sequential* engine; thread
    // spawns on the parallel engine allocate stacks by nature (and only at
    // cache-build time, never during selection).
    let cache = DistanceCache::build(&views, &Engine::sequential());

    let krum = Krum::new(n, f).unwrap();
    let multi_krum = MultiKrum::new(n, f).unwrap();
    let bulyan = Bulyan::new(n, f).unwrap();
    let mut scratch = SelectionScratch::new();
    let mut selected = Vec::with_capacity(n);

    // Warm-up: sizes every scratch buffer.
    let warm_krum = krum.select_cached(&cache, &mut scratch);
    let warm_multi = multi_krum.select_cached(&cache, &mut scratch).to_vec();
    bulyan.select_cached(&cache, &mut scratch, &mut selected);
    let warm_bulyan = selected.clone();

    // Steady state: repeated selections must not touch the heap at all.
    let mut steady_krum = 0usize;
    let mut steady_multi_len = 0usize;
    let allocations = count_allocations(|| {
        for _ in 0..10 {
            steady_krum = krum.select_cached(&cache, &mut scratch);
            steady_multi_len = multi_krum.select_cached(&cache, &mut scratch).len();
            bulyan.select_cached(&cache, &mut scratch, &mut selected);
        }
    });
    assert_eq!(
        allocations, 0,
        "steady-state Krum/Multi-Krum/Bulyan selection allocated {allocations} times"
    );

    // And the warm results are reproduced exactly.
    assert_eq!(steady_krum, warm_krum);
    assert_eq!(steady_multi_len, warm_multi.len());
    assert_eq!(selected, warm_bulyan);
    assert_eq!(selected.len(), bulyan.selection_size());
}
