//! Property tests: the parallel and sequential aggregation engines are
//! observationally identical.
//!
//! For every GAR, random `(n, f, d)` and random payloads — including NaN and
//! ±inf values a Byzantine node may deliberately send — both engines must
//! select the same indices, produce **bit-equal** aggregates, and reject
//! malformed inputs with identical errors.

use garfield_aggregation::{
    build_gar, gram_error_bound, Bulyan, DistanceCache, Engine, GarKind, Krum, Mda, MultiKrum,
};
use garfield_tensor::{squared_norm_slices, GradientView};
use proptest::prelude::*;

/// Deterministic pseudo-random payload with optional non-finite values mixed
/// in (NaN / +inf / −inf land on a seed-dependent subset of coordinates).
fn payloads(n: usize, d: usize, seed: u64, non_finite: bool) -> Vec<Vec<f32>> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*: cheap, deterministic, good enough for test payloads.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    (0..n)
        .map(|_| {
            (0..d)
                .map(|_| {
                    let r = next();
                    if non_finite && r % 31 == 0 {
                        match r % 3 {
                            0 => f32::NAN,
                            1 => f32::INFINITY,
                            _ => f32::NEG_INFINITY,
                        }
                    } else {
                        ((r % 10_000) as f32 - 5_000.0) / 250.0
                    }
                })
                .collect()
        })
        .collect()
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engines_produce_bit_equal_aggregates(
        f in 0usize..3,
        d in 1usize..96,
        seed in 0u64..100_000,
        threads in 2usize..6,
        non_finite in prop_oneof![Just(true), Just(false)],
    ) {
        let par = Engine::with_threads(threads);
        let seq = Engine::sequential();
        for (ki, kind) in GarKind::all().into_iter().enumerate() {
            let n = kind.minimum_inputs(f).max(f + 3);
            let data = payloads(n, d, seed ^ (ki as u64) << 8, non_finite);
            let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();
            let gar = build_gar(&kind, n, f).unwrap();
            let a = gar.aggregate_views(&views, &seq).unwrap();
            let b = gar.aggregate_views(&views, &par).unwrap();
            prop_assert_eq!(
                bits(a.data()),
                bits(b.data()),
                "{} diverged between engines (n={}, f={}, d={}, non_finite={})",
                kind, n, f, d, non_finite
            );
        }
    }

    #[test]
    fn engines_select_the_same_indices(
        f in 1usize..3,
        d in 1usize..64,
        seed in 0u64..100_000,
        non_finite in prop_oneof![Just(true), Just(false)],
    ) {
        let par = Engine::with_threads(4);
        let seq = Engine::sequential();

        let n = 4 * f + 3; // satisfies every selection rule at once
        let data = payloads(n, d, seed, non_finite);
        let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();

        let krum = Krum::new(n, f).unwrap();
        prop_assert_eq!(
            krum.select_index_views(&views, &seq).unwrap(),
            krum.select_index_views(&views, &par).unwrap()
        );
        let mk = MultiKrum::new(n, f).unwrap();
        prop_assert_eq!(
            mk.select_indices_views(&views, &seq).unwrap(),
            mk.select_indices_views(&views, &par).unwrap()
        );
        let mda = Mda::new(n, f).unwrap();
        prop_assert_eq!(
            mda.select_indices_views(&views, &seq).unwrap(),
            mda.select_indices_views(&views, &par).unwrap()
        );
        let bulyan = Bulyan::new(n, f).unwrap();
        prop_assert_eq!(
            bulyan.select_indices_views(&views, &seq).unwrap(),
            bulyan.select_indices_views(&views, &par).unwrap()
        );
    }

    #[test]
    fn engines_reject_malformed_inputs_identically(
        seed in 0u64..100_000,
        d in 1usize..16,
    ) {
        let par = Engine::with_threads(4);
        let seq = Engine::sequential();
        for kind in GarKind::all() {
            let n = kind.minimum_inputs(1).max(4);
            let gar = build_gar(&kind, n, 1).unwrap();

            // Wrong count.
            let short = payloads(n - 1, d, seed, false);
            let short_views: Vec<GradientView<'_>> = short.iter().map(GradientView::from).collect();
            prop_assert_eq!(
                gar.aggregate_views(&short_views, &seq).unwrap_err(),
                gar.aggregate_views(&short_views, &par).unwrap_err()
            );

            // Heterogeneous lengths.
            let mut ragged = payloads(n, d, seed, false);
            ragged[n - 1].push(1.0);
            let ragged_views: Vec<GradientView<'_>> = ragged.iter().map(GradientView::from).collect();
            prop_assert_eq!(
                gar.aggregate_views(&ragged_views, &seq).unwrap_err(),
                gar.aggregate_views(&ragged_views, &par).unwrap_err()
            );

            // Empty input set.
            prop_assert_eq!(
                gar.aggregate_views(&[], &seq).unwrap_err(),
                gar.aggregate_views(&[], &par).unwrap_err()
            );
        }
    }

    #[test]
    fn fast_math_engines_are_bit_identical_seq_vs_par(
        f in 0usize..3,
        d in 1usize..200,
        seed in 0u64..100_000,
        threads in 2usize..6,
    ) {
        // The fast-math contract: Gram distances may differ from the exact
        // kernel (within gram_error_bound), but sequential and parallel
        // fast-math engines must still agree bit for bit.
        let seq = Engine::sequential().fast_math(true);
        let par = Engine::with_threads(threads).fast_math(true);
        for (ki, kind) in GarKind::all().into_iter().enumerate() {
            let n = kind.minimum_inputs(f).max(f + 3);
            let data = payloads(n, d, seed ^ (ki as u64) << 8, false);
            let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();
            let gar = build_gar(&kind, n, f).unwrap();
            let a = gar.aggregate_views(&views, &seq).unwrap();
            let b = gar.aggregate_views(&views, &par).unwrap();
            prop_assert_eq!(
                bits(a.data()),
                bits(b.data()),
                "{} diverged between fast-math engines (n={}, f={}, d={})",
                kind, n, f, d
            );
        }
    }

    #[test]
    fn fast_math_gram_distances_stay_within_the_documented_bound(
        n in 4usize..10,
        d in 1usize..300,
        seed in 0u64..100_000,
    ) {
        let data = payloads(n, d, seed ^ 0x6721, false);
        let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();
        let exact = DistanceCache::build(&views, &Engine::sequential());
        let fast = DistanceCache::build(&views, &Engine::sequential().fast_math(true));
        prop_assert!(fast.used_gram(), "finite inputs must take the Gram path");
        for i in 0..n {
            for j in 0..n {
                let bound = gram_error_bound(
                    n,
                    d,
                    squared_norm_slices(&data[i]),
                    squared_norm_slices(&data[j]),
                );
                let err = (fast.get(i, j) - exact.get(i, j)).abs();
                prop_assert!(
                    err <= bound,
                    "({}, {}) d={}: |{} - {}| = {} > bound {}",
                    i, j, d, fast.get(i, j), exact.get(i, j), err, bound
                );
                prop_assert!(fast.get(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn fast_math_falls_back_to_exact_on_non_finite_payloads(
        n in 4usize..10,
        d in 1usize..100,
        seed in 0u64..100_000,
    ) {
        // Byzantine NaN/±inf payloads must force the exact kernel: the
        // fast-math cache then equals the default cache bit for bit.
        let data = payloads(n, d, seed ^ 0x9d11, true);
        prop_assume!(data.iter().any(|g| g.iter().any(|v| !v.is_finite())));
        let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();
        let exact = DistanceCache::build(&views, &Engine::sequential());
        let fast = DistanceCache::build(&views, &Engine::sequential().fast_math(true));
        prop_assert!(!fast.used_gram(), "non-finite payloads must force the exact kernel");
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(fast.get(i, j).to_bits(), exact.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn view_aggregation_matches_tensor_aggregation(
        f in 0usize..2,
        d in 1usize..48,
        seed in 0u64..100_000,
    ) {
        // The owned-tensor API is a thin wrapper over views: same bits.
        for kind in GarKind::all() {
            let n = kind.minimum_inputs(f).max(3);
            let data = payloads(n, d, seed ^ 0xabcd, false);
            let tensors: Vec<garfield_tensor::Tensor> = data
                .iter()
                .map(|v| garfield_tensor::Tensor::from_slice(v))
                .collect();
            let views: Vec<GradientView<'_>> = data.iter().map(GradientView::from).collect();
            let gar = build_gar(&kind, n, f).unwrap();
            let from_tensors = gar.aggregate(&tensors).unwrap();
            let from_views = gar.aggregate_views(&views, &Engine::auto()).unwrap();
            prop_assert_eq!(bits(from_tensors.data()), bits(from_views.data()));
        }
    }
}
