//! The flight recorder: fixed-capacity, per-thread ring buffers of
//! structured events with monotonic timestamps, dumpable as JSONL.
//!
//! Every thread that records gets its own ring (registered globally on first
//! use), so the hot path takes only that thread's uncontended mutex. Rings
//! overwrite their oldest events when full — a stalled 25-node run always
//! has its *recent* history, which is the half that matters post-mortem.
//!
//! Timestamps are microseconds since a process-wide epoch pinned by
//! [`crate::enable`]; the dump header carries the epoch's wall-clock
//! (`epoch_unix_us`), so `expfig trace` can align dumps from different
//! processes on the same machine into one cross-node timeline.

use std::cell::Cell;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime};

/// Schema tag written in the first line of every dump.
pub const FLIGHT_SCHEMA: &str = "garfield-obs/flight-v1";

/// Events each per-thread ring holds before overwriting the oldest.
pub const RING_CAPACITY: usize = 4096;

/// What happened. Names are stable — they are the `kind` strings in dumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A server began a training round (`value` = round latency budget, 0 if none).
    RoundStart,
    /// A server finished a round (`value` = round latency in seconds).
    RoundEnd,
    /// A pull (gradient/model quorum request) was broadcast (`value` = quorum size).
    PullIssued,
    /// One pull reply was accepted (`peer` = who answered).
    PullSatisfied,
    /// A pull was re-sent to a silent peer (`peer` = who stayed silent).
    PullRetried,
    /// The pull quorum completed (`value` = replies gathered).
    QuorumFormed,
    /// The transport dropped an outbound frame (`peer` = destination).
    FrameDropped,
    /// A fast-math Gram fill fell back to the exact kernels (non-finite payload).
    FastMathFallback,
    /// A checkpoint was persisted (`value` = seconds spent writing).
    CheckpointWritten,
    /// A state-transfer chunk was served to a rejoining peer (`peer` = requester).
    StateChunkServed,
    /// A GAR excluded a peer's input from the round's aggregate
    /// (`peer` = who was excluded, `value` = the peer's distance score).
    PeerExcluded,
    /// A trace-stamped wire message reached the wire
    /// (`peer` = destination, `value` = the sender's sequence number).
    WireSend,
    /// A trace-stamped wire message was received
    /// (`peer` = sender, `value` = one-way delay in milliseconds, sender's
    /// clock vs this process's clock).
    WireRecv,
    /// A speculative round's fast path held — the consistency check passed
    /// and the cheap average was kept (`value` = aggregation seconds).
    SpeculationHit,
    /// A speculative round fell back — the check tripped (or the sticky
    /// latch was already set) and the robust rule ran
    /// (`value` = aggregation seconds).
    SpeculationFallback,
}

impl EventKind {
    /// The stable snake_case name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::RoundStart => "round_start",
            EventKind::RoundEnd => "round_end",
            EventKind::PullIssued => "pull_issued",
            EventKind::PullSatisfied => "pull_satisfied",
            EventKind::PullRetried => "pull_retried",
            EventKind::QuorumFormed => "quorum_formed",
            EventKind::FrameDropped => "frame_dropped",
            EventKind::FastMathFallback => "fast_math_fallback",
            EventKind::CheckpointWritten => "checkpoint_written",
            EventKind::StateChunkServed => "state_chunk_served",
            EventKind::PeerExcluded => "peer_excluded",
            EventKind::WireSend => "wire_send",
            EventKind::WireRecv => "wire_recv",
            EventKind::SpeculationHit => "speculation_hit",
            EventKind::SpeculationFallback => "speculation_fallback",
        }
    }

    /// Parses a dump `kind` string back into the enum.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "round_start" => EventKind::RoundStart,
            "round_end" => EventKind::RoundEnd,
            "pull_issued" => EventKind::PullIssued,
            "pull_satisfied" => EventKind::PullSatisfied,
            "pull_retried" => EventKind::PullRetried,
            "quorum_formed" => EventKind::QuorumFormed,
            "frame_dropped" => EventKind::FrameDropped,
            "fast_math_fallback" => EventKind::FastMathFallback,
            "checkpoint_written" => EventKind::CheckpointWritten,
            "state_chunk_served" => EventKind::StateChunkServed,
            "peer_excluded" => EventKind::PeerExcluded,
            "wire_send" => EventKind::WireSend,
            "wire_recv" => EventKind::WireRecv,
            "speculation_hit" => EventKind::SpeculationHit,
            "speculation_fallback" => EventKind::SpeculationFallback,
            _ => return None,
        })
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Microseconds since the process epoch.
    pub t_us: u64,
    /// The node the recording thread speaks for (`u32::MAX` = unattributed).
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
    /// The training round the event belongs to.
    pub round: u64,
    /// The peer involved, if any.
    pub peer: Option<u32>,
    /// Event-specific payload (seconds, counts, …); 0.0 when unused.
    pub value: f64,
}

struct Ring {
    events: Vec<Event>,
    /// Next write position once `events` reaches capacity.
    head: usize,
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.overwritten += 1;
        }
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: OnceLock<Arc<Mutex<Ring>>> = const { OnceLock::new() };
    static THREAD_NODE: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// The node id newly recording threads fall back to when
/// [`set_thread_node`] was never called on them (e.g. transport I/O threads
/// spawned before their owner was known). `u32::MAX` = unset.
static DEFAULT_NODE: AtomicU32 = AtomicU32::new(u32::MAX);

/// Attributes every event recorded by *this thread* to `node`.
pub fn set_thread_node(node: u32) {
    THREAD_NODE.with(|n| n.set(node));
}

/// Attributes events from threads that never called [`set_thread_node`] to
/// `node`. `garfield-node` sets this once — the whole process is one node.
pub fn set_default_node(node: u32) {
    DEFAULT_NODE.store(node, Ordering::Relaxed);
}

fn current_node() -> u32 {
    let n = THREAD_NODE.with(|n| n.get());
    if n != u32::MAX {
        n
    } else {
        DEFAULT_NODE.load(Ordering::Relaxed)
    }
}

fn epoch() -> &'static (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    EPOCH.get_or_init(|| {
        let unix_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (Instant::now(), unix_us)
    })
}

/// Wall-clock microseconds (UNIX time) of the process epoch all event
/// timestamps are relative to. First call pins the epoch.
pub fn epoch_unix_us() -> u64 {
    epoch().1
}

/// Records one event into this thread's ring. No-op when recording is
/// disabled; otherwise one monotonic clock read plus an uncontended
/// per-thread mutex push.
#[inline]
pub fn record(kind: EventKind, round: u64, peer: Option<u32>, value: f64) {
    if !crate::enabled() {
        return;
    }
    let event = Event {
        t_us: epoch().0.elapsed().as_micros() as u64,
        node: current_node(),
        kind,
        round,
        peer,
        value,
    };
    THREAD_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Mutex::new(Ring {
                events: Vec::with_capacity(RING_CAPACITY.min(64)),
                head: 0,
                overwritten: 0,
            }));
            rings()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            ring
        });
        ring.lock().unwrap_or_else(|e| e.into_inner()).push(event);
    });
}

/// Copies every thread's ring out, merged and sorted by timestamp. The
/// second field is the total number of events the rings overwrote (lost).
pub fn snapshot() -> (Vec<Event>, u64) {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut overwritten = 0;
    for ring in rings.iter() {
        let ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        // Oldest-first: the segment after `head` predates the one before it.
        events.extend_from_slice(&ring.events[ring.head..]);
        events.extend_from_slice(&ring.events[..ring.head]);
        overwritten += ring.overwritten;
    }
    events.sort_by_key(|e| e.t_us);
    (events, overwritten)
}

fn write_event_jsonl(out: &mut String, e: &Event) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"t_us\":{},\"node\":{},\"kind\":\"{}\",\"round\":{},\"peer\":",
        e.t_us,
        e.node,
        e.kind.as_str(),
        e.round
    );
    match e.peer {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    if e.value.is_finite() {
        let _ = writeln!(out, ",\"value\":{}}}", e.value);
    } else {
        let _ = writeln!(out, ",\"value\":null}}");
    }
}

/// Renders the whole recorder as JSONL: one header object (schema, epoch,
/// pid, events lost to ring overwrites) followed by one object per event,
/// oldest first.
pub fn dump_jsonl() -> String {
    let (events, overwritten) = snapshot();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str(&format!(
        "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"epoch_unix_us\":{},\"pid\":{},\"events\":{},\"overwritten\":{overwritten}}}\n",
        epoch_unix_us(),
        std::process::id(),
        events.len(),
    ));
    for e in &events {
        write_event_jsonl(&mut out, e);
    }
    out
}

/// Writes [`dump_jsonl`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_dump(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(dump_jsonl().as_bytes())?;
    f.flush()
}

/// Installs a panic hook (chained in front of the existing one) that writes
/// a flight dump to `path` — the black box survives the crash. Installing
/// again replaces the destination rather than stacking hooks.
pub fn install_panic_hook(path: PathBuf) {
    static DEST: OnceLock<Mutex<PathBuf>> = OnceLock::new();
    let first = DEST.get().is_none();
    *DEST
        .get_or_init(|| Mutex::new(PathBuf::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = path;
    if !first {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(dest) = DEST.get() {
            let dest = dest.lock().unwrap_or_else(|e| e.into_inner()).clone();
            let _ = write_dump(&dest);
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            EventKind::RoundStart,
            EventKind::RoundEnd,
            EventKind::PullIssued,
            EventKind::PullSatisfied,
            EventKind::PullRetried,
            EventKind::QuorumFormed,
            EventKind::FrameDropped,
            EventKind::FastMathFallback,
            EventKind::CheckpointWritten,
            EventKind::StateChunkServed,
            EventKind::PeerExcluded,
            EventKind::WireSend,
            EventKind::WireRecv,
            EventKind::SpeculationHit,
            EventKind::SpeculationFallback,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }

    #[test]
    fn records_attribute_thread_node_and_sort_by_time() {
        let _g = crate::test_guard();
        crate::enable();
        set_thread_node(7);
        record(EventKind::RoundStart, 1, None, 0.0);
        record(EventKind::PullSatisfied, 1, Some(3), 0.0);
        let (events, _) = snapshot();
        let mine: Vec<&Event> = events.iter().filter(|e| e.node == 7).collect();
        assert!(mine.len() >= 2);
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert!(mine
            .iter()
            .any(|e| e.kind == EventKind::PullSatisfied && e.peer == Some(3)));
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let _g = crate::test_guard();
        crate::enable();
        let handle = std::thread::spawn(|| {
            set_thread_node(42);
            for i in 0..(RING_CAPACITY as u64 + 10) {
                record(EventKind::RoundEnd, i, None, 0.0);
            }
        });
        handle.join().unwrap();
        let (events, overwritten) = snapshot();
        let mine: Vec<&Event> = events.iter().filter(|e| e.node == 42).collect();
        assert_eq!(mine.len(), RING_CAPACITY);
        assert!(overwritten >= 10);
        // The survivors are the *newest* events.
        assert!(mine.iter().all(|e| e.round >= 10));
    }

    #[test]
    fn dump_is_valid_jsonl_with_header() {
        let _g = crate::test_guard();
        crate::enable();
        set_thread_node(1);
        record(EventKind::CheckpointWritten, 5, None, f64::NAN);
        let dump = dump_jsonl();
        let mut lines = dump.lines();
        let header = lines.next().unwrap();
        assert!(header.contains(FLIGHT_SCHEMA));
        assert!(header.contains("\"epoch_unix_us\":"));
        for line in lines {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
        }
        assert!(dump.contains("\"kind\":\"checkpoint_written\""));
        assert!(
            dump.contains("\"value\":null"),
            "NaN must serialize as null"
        );
    }
}
