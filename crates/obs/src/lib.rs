//! # garfield-obs
//!
//! Dependency-free observability for the Garfield-rs runtime: a process-wide
//! [`metrics`] registry (counters, gauges, log-bucketed latency histograms),
//! a [`flight`] recorder (fixed-capacity per-thread ring buffers of
//! structured events), and a [`http`] scrape endpoint serving Prometheus
//! text exposition plus flight dumps — all on `std` alone, no tokio/hyper,
//! no vendored shims.
//!
//! ## Cost model
//!
//! Observability is **off by default** and must be paid for honestly:
//!
//! * Every hot-path operation ([`Counter::inc`], [`Histogram::observe`],
//!   [`flight::record`]) first checks one process-wide `AtomicBool` with a
//!   relaxed load — disabled, recording compiles to a load and a branch.
//! * Enabled, a counter bump is one relaxed `fetch_add`; a histogram
//!   observation is two relaxed `fetch_add`s plus a CAS loop on the sum; a
//!   flight event is an uncontended per-thread mutex push into a fixed ring.
//! * Handle *registration* (name lookup in the global registry) is the cold
//!   path: call sites cache handles in `OnceLock` statics and never touch
//!   the registry again.
//!
//! The perf harness (`expfig perf`) measures the enabled-vs-disabled
//! aggregation throughput delta and CI gates it below 2%.
//!
//! ## Turning it on
//!
//! ```rust
//! garfield_obs::enable();
//! let rounds = garfield_obs::metrics::counter("doc_rounds_total", "Rounds run.", &[]);
//! rounds.inc();
//! assert_eq!(rounds.value(), 1);
//! garfield_obs::flight::record(garfield_obs::flight::EventKind::RoundStart, 0, None, 0.0);
//! assert!(garfield_obs::metrics::render().contains("doc_rounds_total 1"));
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod http;
pub mod metrics;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns recording on process-wide and pins the flight-recorder epoch (the
/// shared `Instant`/wall-clock pair every event timestamp is relative to).
pub fn enable() {
    flight::epoch_unix_us(); // pin the epoch before threads race to record
    ENABLED.store(true, Ordering::Release);
}

/// Turns recording off process-wide. Registered metrics keep their values;
/// subsequent `inc`/`observe`/`record` calls become load-and-branch no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether recording is on. One relaxed atomic load — this is the guard
/// every hot-path operation starts with.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a span clock, or `None` when recording is disabled — so disabled
/// instrumentation skips even the `Instant::now()` syscall.
#[inline]
pub fn span_start() -> Option<std::time::Instant> {
    if enabled() {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// Closes a span opened by [`span_start`]: observes the elapsed time into
/// `hist` and returns it. `None` in, `None` out.
#[inline]
pub fn span_end(
    start: Option<std::time::Instant>,
    hist: &Histogram,
) -> Option<std::time::Duration> {
    let elapsed = start.map(|t| t.elapsed());
    if let Some(d) = elapsed {
        hist.observe_duration(d);
    }
    elapsed
}

/// Serializes unit tests that toggle the process-wide enabled flag, so the
/// crate's own tests don't race each other through the shared global state.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_inert() {
        let _g = test_guard();
        disable();
        let c = metrics::counter("obs_lib_inert_total", "test", &[]);
        c.inc();
        assert_eq!(c.value(), 0);
        assert!(span_start().is_none());
        enable();
        c.inc();
        assert_eq!(c.value(), 1);
        let h = metrics::histogram("obs_lib_inert_seconds", "test", &[]);
        let d = span_end(span_start(), &h);
        assert!(d.is_some());
        assert_eq!(h.snapshot().count(), 1);
    }
}
