//! The process-wide metrics registry: counters, gauges and log-bucketed
//! latency histograms keyed by static names plus label pairs, rendered as
//! Prometheus text exposition (`version 0.0.4`).
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! the registered instrument: look one up once (the cold path takes the
//! registry mutex and scans by name + labels) and bump it forever after
//! with relaxed atomics. Re-registering the same `(name, labels)` returns
//! the existing instrument, so two call sites share one time series.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: 26 finite powers-of-two upper bounds from
/// 1 µs to ~33.6 s, plus the implicit `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 27;

/// The upper bound (seconds) of finite bucket `i`: `1e-6 * 2^i`.
fn bucket_bound(i: usize) -> f64 {
    1.0e-6 * (i as f64).exp2()
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1. A relaxed `fetch_add` when enabled, a load and branch when not.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (stored as `f64` bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (negative to decrement) with a CAS loop.
    #[inline]
    pub fn add(&self, delta: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Non-cumulative per-bucket counts; the last slot is `+Inf`.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of observed values, as `f64` bits (CAS-accumulated).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A latency histogram over fixed log-spaced (powers-of-two) buckets from
/// 1 µs to ~33.6 s. Quantiles are read from bucket upper bounds, so p50/p99
/// carry bucket resolution (a factor of 2), which is what an operational
/// latency signal needs — exact per-round timings stay in `TrainingTrace`.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation, in seconds.
    #[inline]
    pub fn observe(&self, secs: f64) {
        if !crate::enabled() {
            return;
        }
        let core = &self.0;
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if secs <= bucket_bound(i) {
                idx = i;
                break;
            }
        }
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + secs).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one observation from a `Duration`.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// A consistent-enough copy of the current bucket counts (individual
    /// loads are relaxed; concurrent observers may straddle the snapshot).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram's buckets, for quantile reads and
/// interval deltas (`expfig runtime` snapshots around each measured system).
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: f64,
    count: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The observations recorded *since* `earlier` (pointwise saturating
    /// difference), for per-interval quantiles over a shared histogram.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum - earlier.sum,
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// The upper bound (seconds) of the bucket containing quantile
    /// `q ∈ [0, 1]`, or `None` when the histogram is empty. Observations in
    /// the `+Inf` bucket report the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_bound(i.min(HISTOGRAM_BUCKETS - 2)));
            }
        }
        Some(bucket_bound(HISTOGRAM_BUCKETS - 2))
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    instrument: Instrument,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_registry() -> std::sync::MutexGuard<'static, Vec<Entry>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

fn lookup<T: Clone>(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
    pick: impl Fn(&Instrument) -> Option<T>,
    create: impl FnOnce() -> (T, Instrument),
) -> T {
    let mut reg = lock_registry();
    for e in reg.iter() {
        if e.name == name
            && e.labels.len() == labels.len()
            && e.labels
                .iter()
                .zip(labels)
                .all(|(have, want)| have.0 == want.0 && have.1 == want.1)
        {
            return pick(&e.instrument).unwrap_or_else(|| {
                panic!("metric '{name}' already registered with a different type")
            });
        }
    }
    let (handle, instrument) = create();
    reg.push(Entry {
        name,
        help,
        labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
        instrument,
    });
    handle
}

/// Registers (or finds) a counter. Cold path — cache the handle.
pub fn counter(name: &'static str, help: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    lookup(
        name,
        help,
        labels,
        |i| match i {
            Instrument::Counter(c) => Some(c.clone()),
            _ => None,
        },
        || {
            let c = Counter(Arc::new(AtomicU64::new(0)));
            (c.clone(), Instrument::Counter(c))
        },
    )
}

/// Registers (or finds) a gauge. Cold path — cache the handle.
pub fn gauge(name: &'static str, help: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    lookup(
        name,
        help,
        labels,
        |i| match i {
            Instrument::Gauge(g) => Some(g.clone()),
            _ => None,
        },
        || {
            let g = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
            (g.clone(), Instrument::Gauge(g))
        },
    )
}

/// Registers (or finds) a histogram. Cold path — cache the handle.
pub fn histogram(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Histogram {
    lookup(
        name,
        help,
        labels,
        |i| match i {
            Instrument::Histogram(h) => Some(h.clone()),
            _ => None,
        },
        || {
            let h = Histogram(Arc::new(HistogramCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }));
            (h.clone(), Instrument::Histogram(h))
        },
    )
}

fn label_block(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    // Prometheus text exposition escapes: backslash first (so the escapes
    // introduced for quotes and newlines are not themselves re-escaped),
    // then quotes, then literal newlines (which would otherwise split the
    // sample line and corrupt the whole exposition).
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{k}=\"{}\"",
                v.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders every registered metric as Prometheus text exposition. Families
/// (same name, different labels) share one `# HELP`/`# TYPE` header;
/// histograms expand to cumulative `_bucket{le=...}`, `_sum` and `_count`.
pub fn render() -> String {
    use std::fmt::Write as _;
    let reg = lock_registry();
    let mut order: Vec<&Entry> = reg.iter().collect();
    order.sort_by_key(|e| e.name);
    let mut out = String::new();
    let mut last_name = "";
    for e in order {
        if e.name != last_name {
            let kind = match e.instrument {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) => "gauge",
                Instrument::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
            let _ = writeln!(out, "# TYPE {} {kind}", e.name);
            last_name = e.name;
        }
        match &e.instrument {
            Instrument::Counter(c) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    e.name,
                    label_block(&e.labels, None),
                    c.value()
                );
            }
            Instrument::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    e.name,
                    label_block(&e.labels, None),
                    fmt_f64(g.value())
                );
            }
            Instrument::Histogram(h) => {
                let snap = h.snapshot();
                let mut cumulative = 0u64;
                for i in 0..HISTOGRAM_BUCKETS {
                    cumulative += snap.buckets[i];
                    let le = if i == HISTOGRAM_BUCKETS - 1 {
                        "+Inf".to_string()
                    } else {
                        fmt_f64(bucket_bound(i))
                    };
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        e.name,
                        label_block(&e.labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    e.name,
                    label_block(&e.labels, None),
                    fmt_f64(snap.sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    e.name,
                    label_block(&e.labels, None),
                    snap.count
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let _g = crate::test_guard();
        crate::enable();
        let a = counter("obs_m_shared_total", "test", &[("node", "1")]);
        let b = counter("obs_m_shared_total", "test", &[("node", "1")]);
        let other = counter("obs_m_shared_total", "test", &[("node", "2")]);
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(other.value(), 1);
    }

    #[test]
    fn gauge_add_and_set() {
        let _g = crate::test_guard();
        crate::enable();
        let g = gauge("obs_m_gauge", "test", &[]);
        g.set(5.0);
        g.add(2.5);
        g.add(-4.0);
        assert!((g.value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = crate::test_guard();
        crate::enable();
        let h = histogram("obs_m_hist_seconds", "test", &[]);
        let before = h.snapshot();
        for _ in 0..90 {
            h.observe(0.001); // ≤ 1.024 ms bucket
        }
        for _ in 0..10 {
            h.observe(0.1); // ≤ 0.131 s bucket
        }
        let snap = h.snapshot().since(&before);
        assert_eq!(snap.count(), 100);
        assert!((snap.sum() - 1.09).abs() < 1e-9);
        let p50 = snap.quantile(0.50).unwrap();
        let p99 = snap.quantile(0.99).unwrap();
        assert!(p50 <= 0.0011, "p50 {p50} should land in the ~1 ms bucket");
        assert!(
            (0.05..=0.14).contains(&p99),
            "p99 {p99} should land in the ~0.1 s bucket"
        );
        assert!(snap.quantile(0.0).unwrap() <= p50);
    }

    #[test]
    fn oversized_observations_land_in_inf_bucket() {
        let _g = crate::test_guard();
        crate::enable();
        let h = histogram("obs_m_hist_inf_seconds", "test", &[]);
        h.observe(1.0e9);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        // Quantile clamps to the largest finite bound rather than +Inf.
        assert!(snap.quantile(0.99).unwrap().is_finite());
    }

    #[test]
    fn quantile_of_an_empty_snapshot_is_none() {
        let _g = crate::test_guard();
        crate::enable();
        let h = histogram("obs_m_hist_empty_seconds", "test", &[]);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.quantile(0.0), None);
        assert_eq!(snap.quantile(1.0), None);
    }

    #[test]
    fn quantile_of_a_single_observation_is_its_bucket_at_every_q() {
        let _g = crate::test_guard();
        crate::enable();
        let h = histogram("obs_m_hist_single_seconds", "test", &[]);
        h.observe(0.002); // ≤ 2.048 ms bucket
        let snap = h.snapshot();
        let bound = snap.quantile(0.5).unwrap();
        assert!((0.002..0.0041).contains(&bound), "bound {bound}");
        // Every quantile of a one-sample histogram reads the same bucket,
        // including the q = 0 and q = 1 extremes (and out-of-range q clamps).
        for q in [0.0, 0.01, 0.5, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(snap.quantile(q), Some(bound), "q = {q}");
        }
    }

    #[test]
    fn quantile_with_all_observations_in_one_bucket() {
        let _g = crate::test_guard();
        crate::enable();
        let h = histogram("obs_m_hist_onebucket_seconds", "test", &[]);
        for _ in 0..1000 {
            h.observe(0.01); // all land in the ≤ 16.4 ms bucket
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        let p50 = snap.quantile(0.5).unwrap();
        let p999 = snap.quantile(0.999).unwrap();
        assert_eq!(p50, p999, "one bucket ⇒ every quantile reads its bound");
        assert!((0.01..0.017).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn label_values_are_escaped_in_render() {
        let _g = crate::test_guard();
        crate::enable();
        counter(
            "obs_m_escape_total",
            "Escaping test counter.",
            &[("peer", "quote\"backslash\\newline\nend")],
        )
        .inc();
        let text = render();
        assert!(
            text.contains("obs_m_escape_total{peer=\"quote\\\"backslash\\\\newline\\nend\"} 1"),
            "escaped sample missing in:\n{text}"
        );
        // The corrupt raw forms must not appear: an unescaped newline would
        // split the sample line, an unescaped quote would end the value early.
        assert!(!text.contains("newline\nend"));
    }

    #[test]
    fn render_emits_prometheus_text() {
        let _g = crate::test_guard();
        crate::enable();
        counter(
            "obs_m_render_total",
            "Render test counter.",
            &[("gar", "krum")],
        )
        .add(3);
        gauge("obs_m_render_depth", "Render test gauge.", &[]).set(2.0);
        histogram("obs_m_render_seconds", "Render test histogram.", &[]).observe(0.5);
        let text = render();
        assert!(text.contains("# TYPE obs_m_render_total counter"));
        assert!(text.contains("obs_m_render_total{gar=\"krum\"} 3"));
        assert!(text.contains("obs_m_render_depth 2"));
        assert!(text.contains("# TYPE obs_m_render_seconds histogram"));
        assert!(text.contains("obs_m_render_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("obs_m_render_seconds_count 1"));
    }
}
