//! A tiny `std::net` scrape endpoint — the whole HTTP surface Prometheus
//! needs and nothing else. One accept thread, blocking I/O, connection
//! closed after every response; no tokio, no hyper.
//!
//! Routes:
//!
//! * `GET /metrics` — [`crate::metrics::render`] (Prometheus text, v0.0.4)
//! * `GET /flight`  — [`crate::flight::dump_jsonl`] (the flight recorder)
//! * `GET /healthz` — one-line JSON liveness probe (node id + last round)
//! * `GET /`        — a two-line index pointing at the above

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Identity reported by `/healthz` (set once at node startup).
static HEALTH_NODE: AtomicU32 = AtomicU32::new(0);
/// Last training round this endpoint's actor started (relaxed, hot-loop safe).
static HEALTH_ROUND: AtomicU64 = AtomicU64::new(0);

/// Declares which node id `/healthz` reports for this process.
pub fn set_health_node(node: u32) {
    HEALTH_NODE.store(node, Ordering::Relaxed);
}

/// Publishes the training round the node is currently in; `/healthz` echoes
/// it so a watcher can tell a live-but-stuck node from a progressing one.
/// A single relaxed store — safe to call from the round hot loop.
pub fn set_health_round(round: u64) {
    HEALTH_ROUND.store(round, Ordering::Relaxed);
}

/// The `/healthz` body: static 200 JSON with node identity and last round.
fn healthz_body() -> String {
    format!(
        "{{\"ok\":true,\"node\":{},\"round\":{}}}\n",
        HEALTH_NODE.load(Ordering::Relaxed),
        HEALTH_ROUND.load(Ordering::Relaxed),
    )
}

/// A running scrape endpoint. The accept thread is detached and serves
/// until the process exits; dropping the handle does not stop it (nodes
/// serve metrics for their whole life — there is nothing to tear down
/// before exit).
pub struct MetricsServer {
    addr: SocketAddr,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and starts
    /// serving in a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (port in use, bad address).
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        std::thread::Builder::new()
            .name("garfield-metrics".into())
            .spawn(move || {
                // Scrapes are serialized: they are rare (seconds apart),
                // tiny, and a stuck scraper must not pile up threads
                // inside a training node.
                for stream in listener.incoming().flatten() {
                    let _ = handle(stream);
                }
            })?;
        Ok(MetricsServer { addr })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;

    // Read until the request line is complete; 1 KiB is plenty for `GET /x`.
    let mut buf = [0u8; 1024];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(2).any(|w| w == b"\r\n") {
            break;
        }
    }
    let request_line = std::str::from_utf8(&buf[..len])
        .ok()
        .and_then(|s| s.lines().next())
        .unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            String::from("GET only\n"),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::metrics::render(),
            ),
            "/flight" => (
                "200 OK",
                "application/x-ndjson",
                crate::flight::dump_jsonl(),
            ),
            "/healthz" => ("200 OK", "application/json", healthz_body()),
            "/" => (
                "200 OK",
                "text/plain",
                String::from(
                    "garfield-obs: GET /metrics (Prometheus), GET /flight (JSONL), \
                     GET /healthz (liveness)\n",
                ),
            ),
            _ => ("404 Not Found", "text/plain", String::from("not found\n")),
        }
    };

    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_flight_and_404() {
        let _g = crate::test_guard();
        crate::enable();
        crate::metrics::counter("obs_http_hits_total", "test", &[]).inc();
        crate::flight::record(crate::flight::EventKind::QuorumFormed, 9, None, 4.0);
        let server = MetricsServer::start("127.0.0.1:0").unwrap();

        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("Content-Length:"));
        assert!(body.contains("obs_http_hits_total"));

        let (head, body) = get(server.addr(), "/flight");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"kind\":\"quorum_formed\""));

        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, _) = get(server.addr(), "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn healthz_reports_node_and_round() {
        let _g = crate::test_guard();
        set_health_node(7);
        set_health_round(42);
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let (head, body) = get(server.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"));
        assert_eq!(body, "{\"ok\":true,\"node\":7,\"round\":42}\n");
    }
}
