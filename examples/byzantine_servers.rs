//! Tolerating Byzantine *servers* as well as Byzantine workers (MSMW, §5.2).
//!
//! The parameter server is replicated on three machines; one replica and one
//! worker actively attack (random vectors, Fig. 5a of the paper). Honest
//! replicas aggregate worker gradients with Multi-Krum and contract their
//! models with coordinate-wise Median, so training still converges. The same
//! configuration is also run as a crash-tolerant (averaging) deployment to
//! reproduce the paper's observation that crash tolerance is not Byzantine
//! resilience.
//!
//! Run with: `cargo run --release --example byzantine_servers`

use garfield::{AttackKind, Controller, ExperimentConfig, GarKind, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ExperimentConfig::small();
    config.nw = 9;
    config.fw = 1;
    config.nps = 3;
    config.fps = 1;
    config.iterations = 60;
    config.eval_every = 10;
    config.gradient_gar = GarKind::MultiKrum;
    config.model_gar = GarKind::Median;
    config.actual_byzantine_workers = 1;
    config.worker_attack = Some(AttackKind::Random);
    config.actual_byzantine_servers = 1;
    config.server_attack = Some(AttackKind::Random);

    println!(
        "MSMW: {} servers ({} Byzantine), {} workers ({} Byzantine)\n",
        config.nps, config.actual_byzantine_servers, config.nw, config.actual_byzantine_workers
    );

    let controller = Controller::new(config);
    let msmw = controller.run(SystemKind::Msmw)?;
    let crash = controller.run(SystemKind::CrashTolerant)?;
    let vanilla = controller.run(SystemKind::Vanilla)?;

    println!(
        "{:<16} {:>10} {:>14} {:>16}",
        "system", "accuracy", "updates/s", "comm share"
    );
    for trace in [&msmw, &crash, &vanilla] {
        let timing = trace.mean_timing();
        println!(
            "{:<16} {:>10.3} {:>14.2} {:>15.0}%",
            trace.system,
            trace.final_accuracy(),
            trace.updates_per_second(),
            100.0 * timing.communication / timing.total()
        );
    }
    println!(
        "\nOnly the Byzantine-resilient MSMW deployment keeps learning under the attack;\n\
         the crash-tolerant and vanilla deployments average the corrupted vectors in."
    );
    Ok(())
}
