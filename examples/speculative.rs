//! Speculative aggregation: pay the robust price only when attacked.
//!
//! The speculative rule (`speculative(<fallback>)`) runs the cheap average
//! kernel plus a consistency check each round; the first suspicious round
//! trips a sticky latch and every round from then on replays through the
//! robust fallback GAR. This example shows all three phases at a realistic
//! gradient size:
//!
//! 1. honest rounds ride the fast path (and we time the win vs Multi-Krum),
//! 2. a poisoned round trips the check and returns the fallback's output,
//! 3. the latch holds: later rounds stay robust even on clean inputs.
//!
//! Run with: `cargo run --release --example speculative`

use garfield::aggregation::Engine;
use garfield::tensor::GradientView;
use garfield::{build_gar, GarKind, Tensor, TensorRng};
use std::time::Instant;

fn rounds_per_second(gar: &dyn garfield::Gar, views: &[GradientView<'_>], engine: &Engine) -> f64 {
    gar.aggregate_views(views, engine).unwrap(); // warm-up
    let start = Instant::now();
    let mut reps = 0usize;
    while reps == 0 || start.elapsed().as_secs_f64() < 1.0 {
        std::hint::black_box(gar.aggregate_views(views, engine).unwrap());
        reps += 1;
    }
    reps as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let (n, f, d) = (25usize, 5usize, 1_000_000usize);
    let kind: GarKind = "speculative(multi-krum)".parse().unwrap();
    let engine = Engine::auto();

    let mut rng = TensorRng::seed_from(0x5bec);
    let honest: Vec<Tensor> = (0..n).map(|_| rng.normal_tensor(d)).collect();
    let views: Vec<GradientView<'_>> = honest.iter().map(GradientView::from).collect();

    println!("speculative aggregation at n={n} f={f} d={d}\n");

    // Phase 1: fault-free rounds stay on the fast path.
    let spec = build_gar(&kind, n, f).unwrap();
    let robust = build_gar(&GarKind::MultiKrum, n, f).unwrap();
    let fast_rate = rounds_per_second(spec.as_ref(), &views, &engine);
    let robust_rate = rounds_per_second(robust.as_ref(), &views, &engine);
    assert_eq!(spec.fell_back(), Some(false));
    println!("  fast path  : {fast_rate:>7.2} aggregation rounds/s");
    println!("  multi-krum : {robust_rate:>7.2} aggregation rounds/s");
    println!("  speedup    : {:>7.2}x\n", fast_rate / robust_rate);

    // Phase 2: one poisoned input trips the check; the round's output is the
    // robust fallback's output, bit for bit.
    let mut attacked = honest.clone();
    attacked[0] = honest[0].scale(-100.0);
    let attacked_views: Vec<GradientView<'_>> = attacked.iter().map(GradientView::from).collect();
    let out = spec.aggregate_views(&attacked_views, &engine).unwrap();
    let pure = robust.aggregate_views(&attacked_views, &engine).unwrap();
    assert_eq!(out.data(), pure.data());
    println!("  poisoned round: check tripped = {:?}", spec.fell_back());

    // Phase 3: the latch is sticky — clean inputs still take the fallback.
    let out = spec.aggregate_views(&views, &engine).unwrap();
    let pure = robust.aggregate_views(&views, &engine).unwrap();
    assert_eq!(out.data(), pure.data());
    println!(
        "  next clean round still robust: fell_back = {:?}",
        spec.fell_back()
    );
}
