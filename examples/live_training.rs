//! Live-mode smoke run: vanilla + SSMW + MSMW on the threaded actor runtime,
//! each with an injected fault, compared against the sim executor.
//!
//! ```console
//! cargo run --release --example live_training          # live + sim comparison
//! cargo run --release --example live_training sim      # sim substrate only
//! cargo run --release --example live_training live     # live substrate only
//! ```
//!
//! Every node of the live runs is a real OS thread; every gradient and model
//! is a length-prefixed byte message through the router. The telemetry block
//! printed per system is the proof: nonzero per-node message/byte counts.

use garfield::core::{ExecMode, Executor, SimExecutor, SystemKind};
use garfield::runtime::{FaultPlan, LiveExecutor, LiveOptions};
use garfield::{AttackKind, ExperimentConfig};
use std::time::Duration;

fn config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::small();
    cfg.nw = 6; // n ≥ 4 workers; q = n − f keeps Multi-Krum fed (2f + 3 = 5)
    cfg.fw = 1;
    cfg.nps = 3;
    cfg.fps = 1;
    cfg.iterations = 30;
    cfg.eval_every = 10;
    cfg
}

/// The f ≥ 1 injected fault per system: a straggler for vanilla (which needs
/// all n replies), a Byzantine gradient rewrite for SSMW, and a crashed
/// worker for MSMW (ridden out by the q = n − f asynchronous quorum).
fn fault_for(system: SystemKind) -> (FaultPlan, LiveOptions, &'static str) {
    let defaults = LiveOptions::default();
    match system {
        SystemKind::Ssmw => (
            FaultPlan::new().byzantine_worker(0, AttackKind::Reversed),
            defaults,
            "worker 0 sends reversed×100 gradients",
        ),
        SystemKind::Msmw => (
            FaultPlan::new().crash_worker_at(5, 2),
            LiveOptions {
                gradient_quorum: Some(5), // q = n − f
                ..defaults
            },
            "worker 5 crashes at iteration 2, q = n − f = 5",
        ),
        _ => (
            FaultPlan::new().delay_worker(5, 3),
            defaults,
            "worker 5 is a 3 ms straggler",
        ),
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    let mode: Option<ExecMode> = arg.as_deref().map(|s| {
        s.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    });
    let run_sim = mode != Some(ExecMode::Live);
    let run_live = mode != Some(ExecMode::Sim);

    println!("== live_training: threaded actor runtime vs analytic simulation ==");
    let cfg = config();
    println!(
        "   {} workers ({} declared Byzantine), {} server replicas, {} iterations\n",
        cfg.nw, cfg.fw, cfg.nps, cfg.iterations
    );

    for system in [SystemKind::Vanilla, SystemKind::Ssmw, SystemKind::Msmw] {
        println!("-- {system} --");
        if run_sim {
            let trace = SimExecutor::new(cfg.clone())
                .run(system)
                .expect("sim run failed");
            println!(
                "   sim : final accuracy {:.3}, {:.1} updates/s (simulated time)",
                trace.final_accuracy(),
                trace.updates_per_second()
            );
        }
        if run_live {
            let (faults, options, description) = fault_for(system);
            let mut live = LiveExecutor::new(cfg.clone())
                .with_options(LiveOptions {
                    round_deadline: Duration::from_secs(5),
                    ..options
                })
                .with_faults(faults);
            let report = live.run_live(system).expect("live run failed");
            println!(
                "   live: final accuracy {:.3}, {:.1} updates/s (wall clock), fault: {description}",
                report.trace.final_accuracy(),
                report.trace.len() as f64
                    / report
                        .telemetry
                        .round_latencies
                        .iter()
                        .sum::<f64>()
                        .max(1e-9)
            );
            println!(
                "   live telemetry: {} messages, {:.2} MiB across {} nodes, mean round {:.2} ms",
                report.telemetry.total_messages(),
                report.telemetry.total_bytes() as f64 / (1024.0 * 1024.0),
                report.telemetry.nodes.len(),
                report.telemetry.mean_round_latency() * 1e3
            );
            for node in &report.telemetry.nodes {
                println!(
                    "     node {:>2} ({:?}): sent {:>4} msgs / {:>9} B, received {:>4} msgs / {:>9} B, on-wire {:>9} B to {} peers",
                    node.node,
                    node.role,
                    node.messages_sent,
                    node.bytes_sent,
                    node.messages_received,
                    node.bytes_received,
                    node.wire_bytes_sent(),
                    node.peers.len(),
                );
            }
            assert!(
                report
                    .telemetry
                    .nodes
                    .iter()
                    .all(|n| n.messages_sent > 0 && n.bytes_sent > 0),
                "every node (even faulted ones, which act before failing) must move real bytes"
            );
        }
        println!();
    }
    println!("done: live training completed through real router messages.");
}
