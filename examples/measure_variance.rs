//! The paper's `measure_variance.py` tool, in Rust (§3.1).
//!
//! Each GAR is only provably Byzantine-resilient while the workers' gradient
//! variance stays small relative to the true gradient norm. This example runs
//! a few training steps on the synthetic MNIST-like task, estimates both
//! quantities, and reports how often the bounded-variance condition holds for
//! Median, Krum and MDA under the configured `(n, f)`.
//!
//! Run with: `cargo run --release --example measure_variance`

use garfield::aggregation::{GarKind, VarianceProbe};
use garfield::ml::{Dataset, DatasetKind, Mlp};
use garfield::TensorRng;

fn main() {
    let mut rng = TensorRng::seed_from(7);
    let dataset = Dataset::synthetic(DatasetKind::MnistLike, 1024, &mut rng);
    let mut model = Mlp::mnist_cnn_lite(&mut rng);

    let probe = VarianceProbe {
        n: 10,
        f: 2,
        batch_size: 32,
        steps: 8,
        learning_rate: 0.05,
        gars: vec![GarKind::Median, GarKind::Krum, GarKind::Mda],
    };
    println!(
        "measure_variance: n = {}, f = {}, batch = {}, {} probed steps\n",
        probe.n, probe.f, probe.batch_size, probe.steps
    );

    let report = probe.run(&mut model, &dataset);
    println!("{:>5} {:>16} {:>14}", "step", "||grad_true||", "grad std");
    for step in &report.steps {
        println!(
            "{:>5} {:>16.4} {:>14.4}",
            step.step, step.true_gradient_norm, step.gradient_std
        );
    }
    println!();
    for gar in [GarKind::Mda, GarKind::Krum, GarKind::Median] {
        println!(
            "condition satisfied for {:<12} in {:>5.1}% of probed steps",
            gar.to_string(),
            100.0 * report.satisfied_fraction(&gar)
        );
    }
    println!(
        "\nIf a GAR's condition holds rarely, reduce f, add workers, or increase the batch size."
    );
}
