//! Decentralized (peer-to-peer) Byzantine learning on non-IID data (§5.3).
//!
//! Eight devices collaborate without any parameter server. Each keeps its own
//! data — sharded by label, so no device sees every class — and per iteration
//! exchanges gradients and models with its peers, aggregating both robustly.
//! One device behaves Byzantine (little-is-enough attack). The example prints
//! the accuracy trajectory and the communication share, illustrating the
//! paper's finding that the decentralized topology pays O(n²) messages per
//! round and therefore does not scale like the parameter-server variants.
//!
//! Run with: `cargo run --release --example decentralized_learning`

use garfield::core::apps::DecentralizedApp;
use garfield::{AttackKind, ExperimentConfig, GarKind, ShardStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ExperimentConfig::small();
    config.nw = 8;
    config.fw = 1;
    config.iterations = 60;
    config.eval_every = 10;
    config.gradient_gar = GarKind::MultiKrum;
    config.model_gar = GarKind::Median;
    config.shard_strategy = ShardStrategy::ByLabel;
    config.contraction_steps = 1;
    config.actual_byzantine_workers = 1;
    config.worker_attack = Some(AttackKind::LittleIsEnough);

    println!(
        "Decentralized learning: {} devices ({} Byzantine), non-IID data, 1 contraction round\n",
        config.nw, config.actual_byzantine_workers
    );

    let mut app = DecentralizedApp::from_config(config)?;
    let trace = app.run()?;

    for point in &trace.accuracy {
        println!(
            "  iteration {:>3}  accuracy {:.3}  loss {:.3}",
            point.iteration, point.accuracy, point.loss
        );
    }
    let timing = trace.mean_timing();
    println!("\nfinal accuracy      {:.3}", trace.final_accuracy());
    println!(
        "updates per second  {:.2} (simulated)",
        trace.updates_per_second()
    );
    println!(
        "per-iteration time  {:.3}s  (computation {:.0}%, communication {:.0}%, aggregation {:.0}%)",
        timing.total(),
        100.0 * timing.computation / timing.total(),
        100.0 * timing.communication / timing.total(),
        100.0 * timing.aggregation / timing.total()
    );
    Ok(())
}
