//! Quickstart: make a distributed training job Byzantine-resilient.
//!
//! This example mirrors Listing 1 of the paper (SSMW): a single trusted
//! parameter server, several workers — one of which sends reversed, amplified
//! gradients — and Multi-Krum aggregation filtering the attack out. It then
//! runs the identical deployment with plain averaging to show why the robust
//! GAR matters.
//!
//! Run with: `cargo run --release --example quickstart`

use garfield::{AttackKind, Controller, ExperimentConfig, GarKind, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ExperimentConfig::small();
    config.iterations = 60;
    config.eval_every = 10;
    config.gradient_gar = GarKind::MultiKrum;
    config.actual_byzantine_workers = 1;
    config.worker_attack = Some(AttackKind::Reversed);

    println!("Garfield-rs quickstart");
    println!(
        "  {} workers ({} Byzantine, attack: reversed x(-100)), model '{}'\n",
        config.nw, config.actual_byzantine_workers, config.model
    );

    let controller = Controller::new(config.clone());

    // Byzantine-resilient deployment (SSMW, Multi-Krum).
    let robust = controller.run(SystemKind::Ssmw)?;
    println!("SSMW with Multi-Krum (Byzantine-resilient):");
    for point in &robust.accuracy {
        println!(
            "  iteration {:>3}  accuracy {:.3}  loss {:.3}",
            point.iteration, point.accuracy, point.loss
        );
    }
    println!(
        "  final accuracy {:.3}, throughput {:.2} updates/s (simulated)\n",
        robust.final_accuracy(),
        robust.updates_per_second()
    );

    // The same cluster with vanilla averaging collapses under the attack.
    let vanilla = controller.run(SystemKind::Vanilla)?;
    println!("Vanilla averaging under the same attack:");
    println!("  final accuracy {:.3}", vanilla.final_accuracy());
    println!(
        "\nByzantine resilience kept {:.0}% accuracy where averaging kept {:.0}%.",
        100.0 * robust.final_accuracy(),
        100.0 * vanilla.final_accuracy()
    );
    Ok(())
}
